module Proto = Proto
module Pool = Pool
module Journal = Journal
module Transport = Transport
module Cache = Cache
module Trace_check = Trace_check
open Proto
module Ser = Graphdb.Serialize
open Resilience
module Trace = Obs.Trace

module Log = Obs.Log

let now_s () = Unix.gettimeofday ()

(* Env-installed crash plans must look like a real supervisor death — no
   unwinding, no finalizers, just gone. lib/core cannot touch Unix (see
   the rpq_lint unix rule), so the exit behavior is injected here, once,
   at link time. Exit code 70 is EX_SOFTWARE: distinguishable from both a
   clean batch exit and a SIGKILL in the chaos harness's waitpid. The
   flight recorder gets its one chance to publish the black box first —
   [Flight.dump] is atomic and never raises. *)
let () =
  Faults.set_crash_exit (fun site ->
      Obs.Flight.dump ~reason:("crash:" ^ site) ();
      Unix._exit 70)

(* The in-process [Faults.Crash] path (programmatic fault plans, unit
   tests) unwinds instead of exiting: dump at the catch point, then let
   the exception continue to whoever is simulating the crash. *)
let flight_on_crash f =
  try f ()
  with Faults.Crash site as e ->
    Obs.Flight.dump ~reason:("crash:" ^ site) ();
    raise e

(* Supervisor-side telemetry. Counters cover the retry/death policy
   (deterministic under a fixed fault plan), gauges the instantaneous
   load, histograms the queue wait. Worker-side solver metrics do not
   cross the fork boundary — per-job stage timings travel in the reply's
   [stages] block instead. *)
let m_jobs = Obs.Metrics.counter "runner.jobs"
let m_settled = Obs.Metrics.counter "runner.settled"
let m_retries = Obs.Metrics.counter "runner.retries"
let m_deaths_crash = Obs.Metrics.counter "runner.deaths.crash"
let m_deaths_timeout = Obs.Metrics.counter "runner.deaths.timeout"
let m_deaths_malformed = Obs.Metrics.counter "runner.deaths.malformed"
let m_shed = Obs.Metrics.counter "runner.shed"
let m_queue_depth = Obs.Metrics.gauge "runner.queue_depth"
let m_inflight = Obs.Metrics.gauge "runner.inflight"
let m_dispatch_latency = Obs.Metrics.histogram "runner.dispatch_latency_s"

(* Overload-path counters. These carry the Prometheus [_total] suffix in
   their metric names directly (newer convention); the pre-existing
   counter families above keep their unsuffixed names for scrape
   compatibility. *)
let m_poisoned = Obs.Metrics.counter "runner.poisoned_total"
let m_hedges = Obs.Metrics.counter "runner.hedges_total"
let m_hedge_wins = Obs.Metrics.counter "runner.hedge_wins_total"
let m_deadline_exceeded = Obs.Metrics.counter "runner.deadline_exceeded_total"

(* ------------------------------------------------------------------ *)
(* Worker side: run one job to a reply, in this process.               *)
(* ------------------------------------------------------------------ *)

(* A [wedge:N] worker must take the supervisor's SIGKILL-after-grace
   path, so the polite SIGTERM has to be survivable: block it, then stop
   responding. If the supervisor itself dies (it can be SIGKILLed, too)
   nobody is left to deliver our SIGKILL — poll for reparenting to init so
   a wedged orphan exits within a second instead of leaking forever. *)
let wedge_forever () =
  ignore (Unix.sigprocmask Unix.SIG_BLOCK [ Sys.sigterm ]);
  while true do
    Unix.sleep 1;
    if Unix.getppid () = 1 then Unix._exit 0
  done

let worker_probe () =
  match Faults.worker_mode () with
  | None -> None
  | Some (`Kill n) ->
      Some (fun steps -> if steps >= n then Unix.kill (Unix.getpid ()) Sys.sigkill)
  | Some (`Wedge n) -> Some (fun steps -> if steps >= n then wedge_forever ())

let spent_steps = function None -> 0 | Some b -> (Budget.spent b).Budget.steps

(* Worker memory ceiling: a Gc alarm (end of each major cycle) flags when
   the major heap crosses the limit, and the budget probe turns the flag
   into [Budget.Exhausted Memory] on the next tick — so an OOM-bound job
   degrades to a certified [Bounded] reply instead of being SIGKILLed by
   the kernel. Set before the pool forks so workers inherit it. *)
let heap_limit_words : int option ref = ref None

let set_max_heap_mb mb =
  heap_limit_words := Option.map (fun mb -> mb * 1024 * 1024 / (Sys.word_size / 8)) mb

let run_job_inner (job : job) : reply =
  match Trace.stage "parse" (fun () -> Ser.parse job.db) with
  | Error e -> failed ~id:job.id ~kind:"bad-job" "database: %s" e
  | Ok p -> begin
      match Automata.Regex.parse_opt job.query with
      | None -> failed ~id:job.id ~kind:"bad-job" "invalid regular expression %S" job.query
      | Some _ -> begin
          match
            match job.faults with None -> Ok (Faults.plan ()) | Some s -> Faults.parse s
          with
          | Error e -> failed ~id:job.id ~kind:"bad-job" "faults: %s" e
          | Ok plan ->
              Faults.with_plan plan @@ fun () ->
              let lang = Trace.stage "parse" (fun () -> Automata.Lang.of_string job.query) in
              let fault_probe = worker_probe () in
              let heap_flag = ref false in
              let alarm =
                Option.map
                  (fun limit ->
                    Gc.create_alarm (fun () ->
                        if (Gc.quick_stat ()).Gc.heap_words > limit then heap_flag := true))
                  !heap_limit_words
              in
              let probe =
                match (alarm, fault_probe) with
                | None, p -> p
                | Some _, p ->
                    Some
                      (fun steps ->
                        if !heap_flag then raise (Budget.Exhausted Budget.Memory);
                        match p with Some f -> f steps | None -> ())
              in
              let b = job.budget in
              let budget =
                match (b.deadline, b.steps, b.memo_cap, probe) with
                | None, None, None, None -> None
                | _ ->
                    Some
                      (Budget.create ?deadline:b.deadline ?steps:b.steps ?memo_cap:b.memo_cap
                         ?probe ())
              in
              let verdict, cert =
                Fun.protect
                  ~finally:(fun () -> Option.iter Gc.delete_alarm alarm)
                @@ fun () ->
                match Solver.solve_bounded ?budget p.Ser.db lang with
                | Solver.Exact r ->
                    ( V_exact
                        {
                          value = r.Solver.value;
                          algorithm = Solver.algorithm_name r.Solver.algorithm;
                          witness = r.Solver.witness;
                        },
                      r.Solver.cert )
                | Solver.Bounded { lower; upper; upper_witness; reason; spent = _; cert } ->
                    ( V_bounded
                        {
                          lower;
                          upper;
                          witness = upper_witness;
                          reason = Budget.exhaustion_name reason;
                        },
                      cert )
                | exception Invalid_argument e ->
                    (V_failed { kind = "bad-job"; message = e; retriable = false }, None)
                | exception Invariant.Internal_error e ->
                    (V_failed { kind = "internal"; message = e; retriable = false }, None)
              in
              {
                id = job.id;
                attempts = 1;
                steps = spent_steps budget;
                wall_s = 0.0;
                stages = [];
                trace = None;
                verdict;
                cert;
              }
        end
    end

(* The whole job runs under one [solve] span (tagged with the query and
   instance size) and a fresh stage table; the per-stage totals become
   the reply's [stages] block, so they survive the pipe back to the
   supervisor. The job's propagated span context, if any, becomes the
   span's parent — in a forked worker that is the supervisor's [job]
   span, so the stitched trace nests solve stages under it — and the
   span's own context rides back in the reply's [trace] field. *)
let run_job_locally (job : job) : reply =
  Trace.with_parent (Option.bind job.trace Trace.ctx_of_string) @@ fun () ->
  let span_ctx = ref None in
  let reply, stages =
    Trace.with_stages (fun () ->
        Trace.with_span
          ~args:
            [
              ("id", Obs.Jtext.Str job.id);
              ("query", Obs.Jtext.Str job.query);
              ("db_bytes", Obs.Jtext.Int (String.length job.db));
            ]
          "solve"
          (fun () ->
            span_ctx := Option.map Trace.ctx_to_string (Trace.current_ctx ());
            run_job_inner job))
  in
  { reply with stages; trace = !span_ctx }

let worker_handler line =
  let reply =
    match job_of_json line with
    | Error e -> failed ~id:"" ~kind:"bad-job" "unparseable job line: %s" e
    | Ok job -> run_job_locally job
  in
  reply_to_json reply

(* ------------------------------------------------------------------ *)
(* Supervisor: retry policy.                                           *)
(* ------------------------------------------------------------------ *)

type config = {
  workers : int;
  retries : int;  (** extra attempts after the first *)
  degrade : int;  (** budget divisor applied per retry *)
  queue_cap : int;  (** admission limit for {!serve} *)
  job_timeout : float option;
  grace : float;
  backoff : float;  (** base retry delay, doubled per attempt *)
  journal_sync : Journal.sync;  (** fsync policy for {!run_batch}'s journal *)
  max_heap_mb : int option;  (** worker memory ceiling (Gc-alarm watchdog) *)
  hedge_after : float option;  (** speculative duplicate after this many seconds; [None] = off *)
  poison_k : int;  (** quarantine after this many worker deaths; 0 disables *)
}

let default_config =
  {
    workers = 4;
    retries = 2;
    degrade = 8;
    queue_cap = 64;
    job_timeout = None;
    grace = 0.5;
    backoff = 0.05;
    journal_sync = Journal.Per_job;
    max_heap_mb = None;
    hedge_after = None;
    poison_k = 3;
  }

(* 50k steps is comfortably above anything the polynomial paths tick and
   a fraction of a second of branch and bound: a sane first ceiling for a
   job that crashed with no budget of its own. *)
let default_retry_steps = 50_000

let degrade_budget ~degrade (b : budget_spec) : budget_spec =
  let d = max 2 degrade in
  {
    deadline = Option.map (fun s -> Float.max 0.01 (s /. float_of_int d)) b.deadline;
    steps =
      (match b.steps with
      | Some s -> Some (max 1 (s / d))
      | None -> Some default_retry_steps);
    memo_cap = b.memo_cap;
  }

let death_kind = function
  (* A wedge IS a timeout to the client (same remedy: smaller budget);
     the structural distinction only feeds the poison policy below. *)
  | Pool.Timed_out | Pool.Wedged -> "timeout"
  | Pool.Exited _ | Pool.Signaled _ -> "crash"
  | Pool.Malformed _ -> "malformed"

(* Re-verification of a reply's certificate, shared by the journal
   resume path, the result cache, and the hedge gate: an answer is
   trusted iff its certificate re-checks (error replies carry none and
   pass vacuously — there is nothing to trust). *)
let verify_reply (reply : reply) =
  match Cert.Checker.check_reply reply with Ok () -> true | Error _ -> false

(* Deaths that count toward quarantine: the job took a worker down with
   it (crash) or forced a hard kill (wedge). A plain timeout is the
   budget's fault, not sabotage, and a malformed reply left the worker
   alive. *)
let poisonous = function
  | Pool.Exited _ | Pool.Signaled _ | Pool.Wedged -> true
  | Pool.Timed_out | Pool.Malformed _ -> false

type task = {
  job : job;  (** as submitted, with the original budget *)
  submitted : float;  (** wall clock at {!submit}, for dispatch latency *)
  span : Trace.handle option;  (** the supervisor-side [job] span: submit -> settle *)
  deadline_abs : float;  (** end-to-end client deadline, absolute; [infinity] = none *)
  mutable attempts : int;  (** primary dispatches so far (hedges don't count) *)
  mutable cur_budget : budget_spec;
  mutable first_dispatch : float;  (** wall clock, for [wall_s] *)
  mutable not_before : float;  (** backoff gate *)
  mutable last_dispatch : float;  (** wall clock of the current attempt's dispatch *)
  mutable wire : string;  (** the current attempt's payload, reused verbatim by a hedge *)
  mutable hedged : bool;  (** a speculative duplicate was launched for this attempt *)
  mutable primary_up : bool;  (** the primary attempt is on a worker *)
  mutable hedge_up : bool;  (** the hedge attempt is on a worker *)
  mutable fallback : reply option;
      (** a racing attempt's reply whose certificate failed the hedge
          gate: kept as last resort in case the other attempt dies *)
  mutable deaths : int;  (** poisonous primary-attempt worker deaths so far *)
}

(* Hedge attempts run under a reserved id prefix on the pool (the NUL
   byte keeps it out of any sane client id space; serve's internal ids
   all start with 'c'), carrying the primary's payload verbatim — so the
   worker-side computation, faults included, is byte-identical. *)
let hedge_prefix = "\x00hedge:"
let hedge_tag id = hedge_prefix ^ id

let hedge_untag id =
  if String.starts_with ~prefix:hedge_prefix id then
    Some (String.sub id (String.length hedge_prefix) (String.length id - String.length hedge_prefix))
  else None

(* A worker span streamed as ["open"] but whose closing event never
   arrived — the raw material for synthesizing [interrupted] spans when
   the worker dies mid-job. *)
type wspan = {
  w_sid : string;
  w_name : string;
  w_ts : float;  (* relative to the shared trace epoch *)
  w_depth : int;
  w_pid : int;
  w_tid : string;
  w_psid : string option;
}

type engine = {
  cfg : config;
  pool : Pool.t;
  pending : task Queue.t;
  mutable delayed : task list;
  inflight : (string, task) Hashtbl.t;
  wopen : (string, wspan list) Hashtbl.t;  (** job id -> worker spans still open *)
  emit : reply -> unit;
  on_dispatch : task -> unit;  (** first dispatch only (journal Started) *)
}

let engine_load e = Queue.length e.pending + List.length e.delayed + Hashtbl.length e.inflight

let update_gauges e =
  Obs.Metrics.set m_queue_depth (float_of_int (Queue.length e.pending + List.length e.delayed));
  Obs.Metrics.set m_inflight (float_of_int (Hashtbl.length e.inflight))

let submit ?deadline_abs e (job : job) =
  Obs.Metrics.incr m_jobs;
  (* The supervisor's per-job span opens at submission and closes at
     settle, spanning queue wait, every dispatch and every retry. Its
     parent is the job's propagated context (a serve [request] span, or
     a remote client's span); its own identity is what the worker's
     [solve] span will nest under. *)
  let span =
    Trace.open_span
      ?parent:(Option.bind job.trace Trace.ctx_of_string)
      ~args:[ ("id", Obs.Jtext.Str job.id) ]
      "job"
  in
  let submitted = now_s () in
  (* The end-to-end clock starts at the earliest point the deadline is
     known: the serve layer passes the admission-time absolute deadline
     so queue time spent there is charged; a batch submission starts it
     here. *)
  let deadline_abs =
    match deadline_abs with
    | Some d -> d
    | None -> (
        match job.deadline_ms with
        | Some ms -> submitted +. (float_of_int ms /. 1000.0)
        | None -> infinity)
  in
  Queue.add
    {
      job;
      submitted;
      span;
      deadline_abs;
      attempts = 0;
      cur_budget = job.budget;
      first_dispatch = 0.0;
      not_before = 0.0;
      last_dispatch = 0.0;
      wire = "";
      hedged = false;
      primary_up = false;
      hedge_up = false;
      fallback = None;
      deaths = 0;
    }
    e.pending

let settle e t reply =
  Hashtbl.remove e.inflight t.job.id;
  Hashtbl.remove e.wopen t.job.id;
  Hashtbl.remove e.wopen (hedge_tag t.job.id);
  Obs.Metrics.incr m_settled;
  update_gauges e;
  Trace.instant
    ~args:
      [ ("id", Obs.Jtext.Str t.job.id); ("outcome", Obs.Jtext.Str (verdict_name reply.verdict)) ]
    "settle";
  Option.iter
    (fun h ->
      Trace.close_span
        ~args:
          [
            ("outcome", Obs.Jtext.Str (verdict_name reply.verdict));
            ("attempts", Obs.Jtext.Int t.attempts);
          ]
        h)
    t.span;
  e.emit { reply with id = t.job.id; attempts = t.attempts; wall_s = now_s () -. t.first_dispatch }

(* Seconds left on the task's end-to-end deadline, clamped into the
   worker budget: the solver's processor-time deadline can never exceed
   the client's remaining wall budget (processor time ≤ wall time), so
   queue time already spent is not spent again on the worker. *)
let remaining_wall t ~t_now =
  if t.deadline_abs = infinity then None
  else Some (Float.max 0.01 (t.deadline_abs -. t_now))

let clamp_budget (b : budget_spec) = function
  | None -> b
  | Some rem ->
      {
        b with
        deadline = Some (match b.deadline with None -> rem | Some d -> Float.min d rem);
      }

(* The pool's wall deadline backstops the solver's budget deadline; give
   it a hair of slack so a budget-exhausted worker wins the race to
   write its certified Bounded reply before the SIGTERM lands. *)
let pool_timeout rem = Option.map (fun r -> r +. 0.05) rem

(* Launch speculative duplicates of slow in-flight attempts, but only
   with capacity to spare: an idle worker and an empty pending queue —
   queued work always outranks a hedge. One hedge per attempt. *)
let hedge_ready e =
  match e.cfg.hedge_after with
  | None -> ()
  | Some after ->
      if Pool.idle_count e.pool > 0 && Queue.is_empty e.pending then begin
        let t_now = now_s () in
        Hashtbl.iter
          (fun _ t ->
            if
              t.primary_up && (not t.hedged)
              && t_now -. t.last_dispatch >= after
              && Pool.idle_count e.pool > 0
            then begin
              t.hedged <- true;
              t.hedge_up <- true;
              Obs.Metrics.incr m_hedges;
              Trace.instant ~args:[ ("id", Obs.Jtext.Str t.job.id) ] "hedge";
              Log.info "hedge"
                [ ("id", Obs.Jtext.Str t.job.id); ("attempt", Obs.Jtext.Int t.attempts) ];
              Pool.assign e.pool ~id:(hedge_tag t.job.id)
                ?timeout:(pool_timeout (remaining_wall t ~t_now))
                ~payload:t.wire ()
            end)
          e.inflight
      end

let dispatch_ready e =
  (* Promote delayed tasks whose backoff expired... *)
  let t_now = now_s () in
  let due, still = List.partition (fun t -> t.not_before <= t_now) e.delayed in
  e.delayed <- still;
  List.iter (fun t -> Queue.add t e.pending) due;
  (* ...then feed idle workers. *)
  let idle = ref (Pool.idle_count e.pool) in
  while !idle > 0 && not (Queue.is_empty e.pending) do
    let t = Queue.pop e.pending in
    let t_now = now_s () in
    if t.deadline_abs <= t_now then begin
      (* Expired while queued: shed without burning a worker on an
         answer nobody is waiting for. Retriable — the client may come
         back with a fresh deadline. *)
      Obs.Metrics.incr m_deadline_exceeded;
      Trace.instant
        ~args:[ ("id", Obs.Jtext.Str t.job.id); ("reason", Obs.Jtext.Str "deadline_exceeded") ]
        "shed";
      Log.warn "deadline-exceeded"
        [
          ("id", Obs.Jtext.Str t.job.id);
          ("late_s", Obs.Jtext.Float (t_now -. t.deadline_abs));
        ];
      if t.first_dispatch = 0.0 then t.first_dispatch <- t.submitted;
      settle e t
        (failed ~retriable:true ~id:t.job.id ~kind:"deadline_exceeded"
           "deadline expired in queue before dispatch")
    end
    else begin
      if t.attempts = 0 then begin
        t.first_dispatch <- t_now;
        Obs.Metrics.observe m_dispatch_latency (t.first_dispatch -. t.submitted);
        e.on_dispatch t
      end;
      t.attempts <- t.attempts + 1;
      t.last_dispatch <- t_now;
      t.hedged <- false;
      t.primary_up <- true;
      t.hedge_up <- false;
      t.fallback <- None;
      Hashtbl.replace e.inflight t.job.id t;
      Trace.instant ~args:[ ("id", Obs.Jtext.Str t.job.id) ] "dispatch";
      (* The worker parents its spans under this task's supervisor span;
         an untraced supervisor forwards whatever context the job came in
         with, so propagation survives un-instrumented hops. *)
      let trace =
        match t.span with
        | Some h -> Some (Trace.ctx_to_string (Trace.handle_ctx h))
        | None -> t.job.trace
      in
      let rem = remaining_wall t ~t_now in
      let payload = job_to_wire_json { t.job with budget = clamp_budget t.cur_budget rem; trace } in
      t.wire <- payload;
      Pool.assign e.pool ~id:t.job.id ?timeout:(pool_timeout rem) ~payload ();
      decr idle
    end
  done;
  hedge_ready e;
  update_gauges e

let death_counter = function
  | Pool.Timed_out | Pool.Wedged -> m_deaths_timeout
  | Pool.Exited _ | Pool.Signaled _ -> m_deaths_crash
  | Pool.Malformed _ -> m_deaths_malformed

let log_death ?(hedge = false) t death =
  Trace.instant
    ~args:[ ("id", Obs.Jtext.Str t.job.id); ("death", Obs.Jtext.Str (death_kind death)) ]
    "worker-death";
  Log.warn "worker-death"
    ([
       ("id", Obs.Jtext.Str t.job.id);
       ("death", Obs.Jtext.Str (Pool.death_to_string death));
       ("attempt", Obs.Jtext.Int t.attempts);
     ]
    @ if hedge then [ ("hedge", Obs.Jtext.Bool true) ] else [])

(* Both attempts of the current round are down: quarantine, give up, or
   degrade-and-retry. Quarantine preempts the retry budget — a job that
   keeps taking workers down with it gets no more of them, however many
   retries it has left. *)
let retry_or_fail e t death =
  Obs.Metrics.incr (death_counter death);
  log_death t death;
  if e.cfg.poison_k > 0 && t.deaths >= e.cfg.poison_k then begin
    Obs.Metrics.incr m_poisoned;
    Trace.instant
      ~args:[ ("id", Obs.Jtext.Str t.job.id); ("deaths", Obs.Jtext.Int t.deaths) ]
      "poison";
    Log.error "poison"
      [
        ("id", Obs.Jtext.Str t.job.id);
        ("deaths", Obs.Jtext.Int t.deaths);
        ("death", Obs.Jtext.Str (Pool.death_to_string death));
      ];
    Obs.Flight.note
      (Obs.Jtext.Obj
         [
           ("poison", Obs.Jtext.Str t.job.id);
           ("deaths", Obs.Jtext.Int t.deaths);
           ("death", Obs.Jtext.Str (Pool.death_to_string death));
         ]);
    settle e t
      (failed ~id:t.job.id ~kind:"poison" "quarantined after killing %d workers (%s)" t.deaths
         (Pool.death_to_string death))
  end
  else if t.attempts > e.cfg.retries then
    settle e t
      (failed ~id:t.job.id ~kind:(death_kind death) "gave up after %d attempts: %s" t.attempts
         (Pool.death_to_string death))
  else begin
    Hashtbl.remove e.inflight t.job.id;
    Hashtbl.remove e.wopen t.job.id;
    Hashtbl.remove e.wopen (hedge_tag t.job.id);
    Obs.Metrics.incr m_retries;
    Log.info "retry"
      [ ("id", Obs.Jtext.Str t.job.id); ("attempt", Obs.Jtext.Int (t.attempts + 1)) ];
    (* Shrink the budget so whatever made the worker die (a fault tick, a
       runaway search) is preempted by exhaustion on a later attempt and
       the job settles as Bounded instead of failing outright. *)
    t.cur_budget <- degrade_budget ~degrade:e.cfg.degrade t.cur_budget;
    t.not_before <-
      now_s () +. (e.cfg.backoff *. float_of_int (1 lsl min 16 (t.attempts - 1)));
    e.delayed <- t :: e.delayed
  end

(* Resolve a pool event id to its task; hedge attempts resolve to the
   primary's task with [is_hedge] set. *)
let task_of_event e id =
  match Hashtbl.find_opt e.inflight id with
  | Some t -> Some (t, false)
  | None -> (
      match hedge_untag id with
      | Some base -> (
          match Hashtbl.find_opt e.inflight base with
          | Some t -> Some (t, true)
          | None -> None)
      | None -> None (* stray reply for a job we already settled *))

(* ---- worker trace stitching ---- *)

(* Args on re-emitted worker events keep only the scalar fields the
   worker attached; identity/position fields were already lifted. *)
let jtext_of_json : Json.t -> Obs.Jtext.t =
  let rec conv = function
    | Json.Null -> Obs.Jtext.Null
    | Json.Bool b -> Obs.Jtext.Bool b
    | Json.Int i -> Obs.Jtext.Int i
    | Json.Float f -> Obs.Jtext.Float f
    | Json.Str s -> Obs.Jtext.Str s
    | Json.List xs -> Obs.Jtext.List (List.map conv xs)
    | Json.Obj fs -> Obs.Jtext.Obj (List.map (fun (k, v) -> (k, conv v)) fs)
  in
  conv

let structural_fields = [ "ev"; "name"; "ts"; "dur"; "depth"; "pid"; "tid"; "sid"; "psid" ]

let event_args obj =
  match obj with
  | Json.Obj fields ->
      List.filter_map
        (fun (k, v) ->
          if List.mem k structural_fields then None else Some (k, jtext_of_json v))
        fields
  | _ -> []

(* One line from a worker's pipe sink. ["open"] records are remembered
   (per job) so that spans a killed worker never closed can be
   synthesized; ["span"]/["instant"] records are re-emitted into the
   supervisor's sink; ["meta"] is dropped — the epoch is shared through
   fork, so worker timestamps are already on the supervisor's axis. *)
let handle_worker_trace e ~id ~pid line =
  match Json.parse line with
  | Error _ -> () (* torn trace line from a dying worker: not worth a retry *)
  | Ok obj -> begin
      let str k = Option.bind (Json.member k obj) Json.to_str_opt in
      let num k = Option.bind (Json.member k obj) Json.to_float_opt in
      let int k = Option.bind (Json.member k obj) Json.to_int_opt in
      match str "ev" with
      | Some "open" -> begin
          match (str "sid", str "name", num "ts") with
          | Some w_sid, Some w_name, Some w_ts ->
              let w =
                {
                  w_sid;
                  w_name;
                  w_ts;
                  w_depth = Option.value ~default:0 (int "depth");
                  w_pid = Option.value ~default:pid (int "pid");
                  w_tid = Option.value ~default:"" (str "tid");
                  w_psid = str "psid";
                }
              in
              let prev = Option.value ~default:[] (Hashtbl.find_opt e.wopen id) in
              Hashtbl.replace e.wopen id (w :: prev)
          | _ -> ()
        end
      | Some "span" -> begin
          (* The span closed normally: forget its open record. *)
          (match (Hashtbl.find_opt e.wopen id, str "sid") with
          | Some ws, Some sid ->
              Hashtbl.replace e.wopen id (List.filter (fun w -> w.w_sid <> sid) ws)
          | _ -> ());
          match (str "name", num "ts", num "dur") with
          | Some name, Some ts, Some dur ->
              Trace.emit_raw_span ~args:(event_args obj) ?tid:(str "tid") ?sid:(str "sid")
                ?psid:(str "psid") ~name ~ts ~dur
                ~depth:(Option.value ~default:0 (int "depth"))
                ~pid:(Option.value ~default:pid (int "pid"))
                ()
          | _ -> ()
        end
      | Some "instant" -> begin
          match (str "name", num "ts") with
          | Some name, Some ts ->
              Trace.emit_raw_instant ~args:(event_args obj) ?tid:(str "tid") ?sid:(str "sid")
                ?psid:(str "psid") ~name ~ts
                ~depth:(Option.value ~default:0 (int "depth"))
                ~pid:(Option.value ~default:pid (int "pid"))
                ()
          | _ -> ()
        end
      | _ -> ()
    end

(* The worker died with spans still open: emit each as a span ending at
   the moment the death was observed, tagged [interrupted] — partial
   timing is better than a hole in the trace, and the synthesized stop
   time keeps it inside the supervisor's still-open job span. An
   [outcome] names deliberate interruptions ("hedged_loser",
   "cancelled") so a trace reader can tell a kill we chose from a death
   we suffered. *)
let close_interrupted_spans ?outcome e id =
  (match (Hashtbl.find_opt e.wopen id, Trace.epoch ()) with
  | Some ws, Some t0 ->
      let now_rel = now_s () -. t0 in
      let args =
        ("interrupted", Obs.Jtext.Bool true)
        :: (match outcome with None -> [] | Some o -> [ ("outcome", Obs.Jtext.Str o) ])
      in
      List.iter
        (fun w ->
          Trace.emit_raw_span ~args ~tid:w.w_tid ~sid:w.w_sid ?psid:w.w_psid ~name:w.w_name
            ~ts:w.w_ts
            ~dur:(Float.max 0.0 (now_rel -. w.w_ts))
            ~depth:w.w_depth ~pid:w.w_pid ())
        ws
  | _ -> ());
  Hashtbl.remove e.wopen id

(* A settled winner's racing partner is killed without an event; its
   open worker spans close tagged ["hedged_loser"]. *)
let kill_loser e t ~loser_is_hedge =
  let loser = if loser_is_hedge then hedge_tag t.job.id else t.job.id in
  ignore (Pool.abort e.pool ~id:loser);
  if loser_is_hedge then t.hedge_up <- false else t.primary_up <- false;
  Trace.instant
    ~args:
      [ ("id", Obs.Jtext.Str t.job.id); ("loser", Obs.Jtext.Str (if loser_is_hedge then "hedge" else "primary")) ]
    "hedged-loser";
  close_interrupted_spans ~outcome:"hedged_loser" e loser

let handle_event e = function
  | Pool.Input _ | Pool.Writable _ -> ()
  | Pool.Trace { id; pid; line } -> handle_worker_trace e ~id ~pid line
  | Pool.Completed { id; reply = line } -> begin
      match task_of_event e id with
      | None -> ()
      | Some (t, is_hedge) -> begin
          if is_hedge then t.hedge_up <- false else t.primary_up <- false;
          let other_up = if is_hedge then t.primary_up else t.hedge_up in
          match reply_of_json line with
          | Ok r ->
              if other_up then begin
                (* Two attempts raced and this one replied first: the
                   certificate decides. A reply that re-checks settles
                   the job and the loser is killed; one that does not is
                   kept only as a fallback — maybe the slower attempt
                   does better. (Error replies carry no certificate and
                   pass the gate trivially: both attempts failing
                   identically must settle exactly like an unhedged
                   failure.) *)
                if verify_reply r then begin
                  kill_loser e t ~loser_is_hedge:(not is_hedge);
                  if is_hedge then Obs.Metrics.incr m_hedge_wins;
                  settle e t r
                end
                else begin
                  Log.warn "hedge-cert-reject"
                    [
                      ("id", Obs.Jtext.Str t.job.id);
                      ("hedge", Obs.Jtext.Bool is_hedge);
                    ];
                  t.fallback <- Some r
                end
              end
              else begin
                (* No race left: settle ungated, as an unhedged run
                   would. If the primary already replied and was stashed
                   (certificate rejection), prefer its reply — that is
                   the one an unhedged run would have settled. *)
                let r = match t.fallback with Some f when is_hedge -> f | _ -> r in
                if is_hedge then Obs.Metrics.incr m_hedge_wins;
                settle e t r
              end
          | Error msg ->
              Log.error "malformed-reply"
                [ ("id", Obs.Jtext.Str id); ("error", Obs.Jtext.Str msg) ];
              if other_up then
                (* The racing attempt may still settle the job; this
                   malformed attempt is simply out of the race. *)
                Obs.Metrics.incr m_deaths_malformed
              else begin
                match t.fallback with
                | Some r -> settle e t r
                | None -> retry_or_fail e t (Pool.Malformed (line ^ " (" ^ msg ^ ")"))
              end
        end
    end
  | Pool.Crashed { id; death } -> begin
      close_interrupted_spans e id;
      match task_of_event e id with
      | None -> ()
      | Some (t, is_hedge) -> begin
          if is_hedge then t.hedge_up <- false else t.primary_up <- false;
          (* Quarantine counts primary-attempt deaths only: a hedged
             round kills at most one extra worker, and counting it would
             make a hedged run quarantine earlier than the identical
             unhedged run. *)
          if (not is_hedge) && poisonous death then t.deaths <- t.deaths + 1;
          let other_up = if is_hedge then t.primary_up else t.hedge_up in
          if other_up then begin
            (* The race partner is still running — no retry yet, just
               account for the death. *)
            Obs.Metrics.incr (death_counter death);
            log_death ~hedge:is_hedge t death
          end
          else
            match t.fallback with
            | Some r ->
                (* The partner already replied (certificate-rejected);
                   nothing better is coming. *)
                Obs.Metrics.incr (death_counter death);
                log_death ~hedge:is_hedge t death;
                settle e t r
            | None -> retry_or_fail e t death
        end
    end

(* Abandon an in-flight task whose owner vanished (client disconnect):
   kill every running attempt without generating crash events, close its
   spans, and forget it — no reply is emitted and nothing is journaled.
   The freed workers go back to the idle set immediately. *)
let abort_task e t =
  if t.primary_up then ignore (Pool.abort e.pool ~id:t.job.id);
  if t.hedge_up then ignore (Pool.abort e.pool ~id:(hedge_tag t.job.id));
  t.primary_up <- false;
  t.hedge_up <- false;
  close_interrupted_spans ~outcome:"cancelled" e t.job.id;
  close_interrupted_spans ~outcome:"cancelled" e (hedge_tag t.job.id);
  Hashtbl.remove e.inflight t.job.id;
  Option.iter
    (fun h -> Trace.close_span ~args:[ ("outcome", Obs.Jtext.Str "cancelled") ] h)
    t.span;
  update_gauges e

(* The poll timeout must wake us for the nearest backoff expiry (else a
   lone delayed task waits out the full default timeout), for a queued
   task's approaching deadline, and for the nearest hedge trigger. *)
let engine_timeout e =
  let t_now = now_s () in
  let acc =
    List.fold_left
      (fun acc t -> Float.min acc (Float.max 0.005 (t.not_before -. t_now)))
      0.5 e.delayed
  in
  let acc =
    Queue.fold
      (fun acc t ->
        if t.deadline_abs = infinity then acc
        else Float.min acc (Float.max 0.005 (t.deadline_abs -. t_now)))
      acc e.pending
  in
  match e.cfg.hedge_after with
  | None -> acc
  | Some after ->
      Hashtbl.fold
        (fun _ t acc ->
          if t.hedged || not t.primary_up then acc
          else Float.min acc (Float.max 0.005 (t.last_dispatch +. after -. t_now)))
        e.inflight acc

let create_engine cfg ~emit ~on_dispatch =
  if cfg.retries < 0 then invalid_arg "Runner: negative retries";
  if cfg.queue_cap < 1 then invalid_arg "Runner: queue cap must be at least 1";
  (match cfg.max_heap_mb with
  | Some mb when mb < 1 -> invalid_arg "Runner: max heap must be at least 1 MB"
  | _ -> ());
  (* Before the fork: the workers inherit the ceiling with the pool. *)
  set_max_heap_mb cfg.max_heap_mb;
  let pool =
    Pool.create
      { Pool.workers = cfg.workers; job_timeout = cfg.job_timeout; grace = cfg.grace }
      ~handler:worker_handler
  in
  {
    cfg;
    pool;
    pending = Queue.create ();
    delayed = [];
    inflight = Hashtbl.create 64;
    wopen = Hashtbl.create 16;
    emit;
    on_dispatch;
  }

let drain e =
  while engine_load e > 0 do
    dispatch_ready e;
    if engine_load e > 0 then
      List.iter (handle_event e) (Pool.poll ~timeout:(engine_timeout e) e.pool)
  done

(* ------------------------------------------------------------------ *)
(* Batch runs with journal-based crash recovery.                       *)
(* ------------------------------------------------------------------ *)

type batch_stats = { ran : int; resumed : int; failures : int }

let run_batch ?journal cfg (jobs : job list) : reply list * batch_stats =
  flight_on_crash @@ fun () ->
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (j : job) ->
      if Hashtbl.mem seen j.id then
        invalid_arg (Printf.sprintf "Runner.run_batch: duplicate job id %S" j.id);
      Hashtbl.add seen j.id ())
    jobs;
  let recorded =
    match journal with
    | None -> Hashtbl.create 0
    | Some path -> begin
        match Journal.load path with
        | Ok rep -> Journal.completed rep.Journal.entries
        | Error msg -> invalid_arg (Printf.sprintf "Runner.run_batch: %s" msg)
      end
  in
  let jnl =
    match journal with
    | None -> None
    | Some path -> begin
        match Journal.open_append ~sync:cfg.journal_sync path with
        | Ok j -> Some j
        | Error msg -> invalid_arg (Printf.sprintf "Runner.run_batch: %s" msg)
      end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Journal.close jnl)
    (fun () ->
      let results : (string, reply) Hashtbl.t = Hashtbl.create 64 in
      let resumed = ref 0 in
      let todo =
        List.filter
          (fun (j : job) ->
            match Hashtbl.find_opt recorded j.id with
            | Some (digest, reply)
              when digest = Journal.job_digest j
                   && (Check.level () = Check.Off || verify_reply reply) ->
                Hashtbl.replace results j.id reply;
                incr resumed;
                false
            | _ -> true)
          jobs
      in
      let emit r =
        Hashtbl.replace results r.id r;
        Option.iter
          (fun jnl ->
            let j = List.find (fun (j : job) -> j.id = r.id) jobs in
            Journal.append jnl (Journal.Done { id = r.id; digest = Journal.job_digest j; reply = r }))
          jnl
      in
      let on_dispatch t =
        Option.iter
          (fun jnl ->
            Journal.append jnl
              (Journal.Started { id = t.job.id; digest = Journal.job_digest t.job }))
          jnl
      in
      let e = create_engine cfg ~emit ~on_dispatch in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown e.pool)
        (fun () ->
          List.iter (submit e) todo;
          drain e);
      let replies =
        List.map
          (fun (j : job) ->
            match Hashtbl.find_opt results j.id with
            | Some r -> r
            | None ->
                Invariant.internal_error "Runner.run_batch: job %s never settled" j.id)
          jobs
      in
      let failures =
        List.length
          (List.filter (fun r -> match r.verdict with V_failed _ -> true | _ -> false) replies)
      in
      (replies, { ran = List.length todo; resumed = !resumed; failures }))

(* ------------------------------------------------------------------ *)
(* Serve: many clients, one engine — per-client fairness, admission    *)
(* control, and the certificate-gated result cache.                    *)
(* ------------------------------------------------------------------ *)

(* A [{"stats": true}] line (optionally carrying an [id]) is a control
   request, not a job: it answers immediately with the supervisor's
   metrics snapshot and consumes no queue slot. The snapshot is spliced
   in textually — [Obs.Metrics.snapshot_string] emits the same JSON
   grammar this layer parses (see [Obs.Jtext]). *)
let is_stats_request v =
  match Json.member "stats" v with Some (Json.Bool true) -> true | _ -> false

let stats_line id =
  Printf.sprintf {|{"id":%s,"stats":%s}|}
    (Json.to_string (Json.Str id))
    (Obs.Metrics.snapshot_string ())

let m_serve_clients = Obs.Metrics.gauge "serve.clients"
let m_serve_queued = Obs.Metrics.gauge "serve.queued"
let m_serve_inflight = Obs.Metrics.gauge "serve.inflight"
let m_serve_draining = Obs.Metrics.gauge "serve.draining"
let m_serve_cancelled = Obs.Metrics.counter "serve.cancelled"

(* Per-client fairness, factored out of the serve loop so the policy is
   testable without sockets: one FIFO per (priority class, client), a
   round-robin rotation across clients within each class, a weighted-fair
   cycle across classes, and a per-client inflight cap (global across
   classes) so one chatty client cannot monopolize the worker pool. *)
module Admission = struct
  let classes = 3 (* batch 0 | normal 1 | interactive 2, as Proto.priority_class *)

  (* The deterministic weighted-fair dequeue cycle: interactive 4,
     normal 2, batch 1 — interleaved so no class waits out a burst of a
     higher one. When the scheduled class is empty the highest non-empty
     class goes instead, so the cycle never idles a worker. *)
  let cycle = [| 2; 1; 2; 0; 2; 1; 2 |]

  type 'a t = {
    cap : int;
    queues : (int * int, 'a Queue.t) Hashtbl.t;  (** (class, client) -> FIFO *)
    order : int list array;  (** per-class client rotation *)
    adm_inflight : (int, int) Hashtbl.t;
    mutable seq : int;  (** position in the weighted cycle *)
  }

  let create ~client_inflight =
    if client_inflight < 1 then
      invalid_arg "Runner.Admission.create: per-client inflight cap must be at least 1";
    {
      cap = client_inflight;
      queues = Hashtbl.create 16;
      order = Array.make classes [];
      adm_inflight = Hashtbl.create 16;
      seq = 0;
    }

  let enqueue ?(prio = 1) t cid x =
    let k = max 0 (min (classes - 1) prio) in
    match Hashtbl.find_opt t.queues (k, cid) with
    | Some q -> Queue.add x q
    | None ->
        let q = Queue.create () in
        Queue.add x q;
        Hashtbl.replace t.queues (k, cid) q;
        t.order.(k) <- t.order.(k) @ [ cid ]

  let queued_for t cid =
    let n = ref 0 in
    for k = 0 to classes - 1 do
      match Hashtbl.find_opt t.queues (k, cid) with
      | Some q -> n := !n + Queue.length q
      | None -> ()
    done;
    !n

  let queued t = Hashtbl.fold (fun _ q acc -> acc + Queue.length q) t.queues 0

  let inflight_for t cid =
    Option.value ~default:0 (Hashtbl.find_opt t.adm_inflight cid)

  let inflight t = Hashtbl.fold (fun _ n acc -> acc + n) t.adm_inflight 0

  (* Round-robin under the cap, within one class: the first client in
     rotation with work and headroom wins and moves to the back; a
     client skipped for lack of headroom keeps its place, so it is first
     in line once one of its jobs settles. *)
  let pop_class t k =
    let rec scan skipped = function
      | [] -> None
      | cid :: rest -> begin
          match Hashtbl.find_opt t.queues (k, cid) with
          | Some q when (not (Queue.is_empty q)) && inflight_for t cid < t.cap ->
              let x = Queue.pop q in
              if Queue.is_empty q then begin
                Hashtbl.remove t.queues (k, cid);
                t.order.(k) <- List.rev_append skipped rest
              end
              else t.order.(k) <- List.rev_append skipped rest @ [ cid ];
              Hashtbl.replace t.adm_inflight cid (inflight_for t cid + 1);
              Some (cid, x)
          | Some _ -> scan (cid :: skipped) rest
          | None ->
              (* Rotation entry with no queue: drained elsewhere; skip. *)
              scan skipped rest
        end
    in
    scan [] t.order.(k)

  let next t =
    let scheduled = cycle.(t.seq mod Array.length cycle) in
    let rec try_classes = function
      | [] -> None
      | k :: ks -> ( match pop_class t k with Some r -> Some r | None -> try_classes ks)
    in
    match try_classes (scheduled :: List.filter (fun k -> k <> scheduled) [ 2; 1; 0 ]) with
    | Some r ->
        t.seq <- t.seq + 1;
        Some r
    | None -> None

  (* Evict the oldest queued item of the lowest class strictly below
     [below] — priority-aware shedding at the admission cap: an
     interactive arrival against a full queue bumps a queued batch job
     rather than being turned away. Returns the victim and its client. *)
  let steal_lowest t ~below =
    let rec try_k k =
      if k >= below || k >= classes then None
      else
        match t.order.(k) with
        | [] -> try_k (k + 1)
        | cid :: rest -> begin
            match Hashtbl.find_opt t.queues (k, cid) with
            | Some q when not (Queue.is_empty q) ->
                let x = Queue.pop q in
                if Queue.is_empty q then begin
                  Hashtbl.remove t.queues (k, cid);
                  t.order.(k) <- rest
                end;
                Some (cid, x)
            | _ ->
                t.order.(k) <- rest;
                try_k k
          end
    in
    try_k 0

  let settled t cid =
    let n = inflight_for t cid in
    if n <= 1 then Hashtbl.remove t.adm_inflight cid
    else Hashtbl.replace t.adm_inflight cid (n - 1)

  let cancel t cid =
    let xs = ref [] in
    for k = classes - 1 downto 0 do
      (match Hashtbl.find_opt t.queues (k, cid) with
      | Some q -> xs := List.of_seq (Queue.to_seq q) @ !xs
      | None -> ());
      Hashtbl.remove t.queues (k, cid);
      t.order.(k) <- List.filter (fun c -> c <> cid) t.order.(k)
    done;
    !xs
end

type serve_config = {
  base : config;
  listen : string option;
  tcp : int option;
  cache_entries : int;
  client_inflight : int;
  drain_grace : float;
  write_timeout : float;
  serve_journal : string option;
  brownout_after : float option;
      (** queue pressure sustained this long browns the service out:
          batch arrivals are shed and low-priority budgets shrink.
          [None] = off. *)
}

let default_serve_config =
  {
    base = default_config;
    listen = None;
    tcp = None;
    cache_entries = 256;
    client_inflight = 8;
    drain_grace = 5.0;
    write_timeout = 30.0;
    serve_journal = None;
    brownout_after = None;
  }

let m_brownout = Obs.Metrics.gauge "serve.brownout"
let m_brownout_shed = Obs.Metrics.counter "serve.brownout_shed_total"
let m_brownout_degraded = Obs.Metrics.counter "serve.brownout_degraded_total"

(* The engine's inflight table is keyed by job id, but two clients may
   use the same id concurrently — so jobs run under a namespaced
   internal id and the owner table maps back to (client, original id,
   parsed job). Journal and cache always see original ids and the
   canonical (id-blind) digest, which is what lets a resubmission from
   any client hit the cache. *)
let internal_id cid id = Printf.sprintf "c%d:%s" cid id

let serve_sockets ?stdio ?(preconnected = []) ?(preconnected_abrupt = []) scfg =
  flight_on_crash @@ fun () ->
  let cfg = scfg.base in
  if scfg.cache_entries < 0 then
    invalid_arg "Runner.serve_sockets: cache size must be non-negative";
  if scfg.drain_grace < 0.0 then
    invalid_arg "Runner.serve_sockets: drain grace must be non-negative";
  let tr = Transport.create ~write_timeout:scfg.write_timeout () in
  Option.iter (fun path -> Transport.add_listener tr (Transport.listen_unix path)) scfg.listen;
  Option.iter (fun port -> Transport.add_listener tr (Transport.listen_tcp port)) scfg.tcp;
  Option.iter
    (fun (ic, oc) ->
      (* Anything already buffered on the channel must leave before raw
         fd writes interleave with it. *)
      flush oc;
      ignore
        (Transport.add_client tr ~eof_drains:true ~owns_fds:false
           ~in_fd:(Unix.descr_of_in_channel ic)
           ~out_fd:(Unix.descr_of_out_channel oc) ()))
    stdio;
  (* Pre-connected fds (a test's socketpair ends) get the tolerant EOF
     semantics of the stdio client: the peer half-closes when done
     sending and expects its queued jobs to drain, not be cancelled. *)
  List.iter
    (fun fd ->
      ignore (Transport.add_client tr ~eof_drains:true ~owns_fds:true ~in_fd:fd ~out_fd:fd ()))
    preconnected;
  (* [preconnected_abrupt] fds instead get real-socket semantics: EOF is
     a disconnect, cancelling the client's work — what the hedged-
     disconnect tests need to exercise without a listener. *)
  List.iter
    (fun fd ->
      ignore (Transport.add_client tr ~eof_drains:false ~owns_fds:true ~in_fd:fd ~out_fd:fd ()))
    preconnected_abrupt;
  let cache = Cache.create ~entries:scfg.cache_entries in
  (* Seed the cache from the journal's settled answers: serve journals
     key [Done] entries by the canonical digest, which is exactly the
     cache key, and the certificate gate inside [Cache.find] keeps a
     tampered entry from ever being served. *)
  (match scfg.serve_journal with
  | Some path when Sys.file_exists path -> begin
      match Journal.load path with
      | Ok rep ->
          Hashtbl.iter
            (fun _id (digest, reply) -> Cache.store cache ~digest reply)
            (Journal.completed rep.Journal.entries)
      | Error msg -> invalid_arg (Printf.sprintf "Runner.serve_sockets: %s" msg)
    end
  | Some _ | None -> ());
  let jnl =
    match scfg.serve_journal with
    | None -> None
    | Some path -> begin
        match Journal.open_append ~sync:cfg.journal_sync path with
        | Ok j -> Some j
        | Error msg -> invalid_arg (Printf.sprintf "Runner.serve_sockets: %s" msg)
      end
  in
  let adm = Admission.create ~client_inflight:scfg.client_inflight in
  (* internal id -> absolute end-to-end deadline, fixed at admission so
     time queued in the per-client FIFOs is charged to the client's
     budget. Entries leave with their job (settle, shed, cancel). *)
  let deadlines : (string, float) Hashtbl.t = Hashtbl.create 64 in
  (* Brownout watchdog: queue pressure (half the admission cap or more)
     sustained for [brownout_after] seconds flips the service into
     brownout; the next pressure-free observation clears both. *)
  let pressure_since = ref None in
  let brownout = ref false in
  let update_brownout () =
    match scfg.brownout_after with
    | None -> ()
    | Some after ->
        let t_now = now_s () in
        let pressured = Admission.queued adm >= max 1 (cfg.queue_cap / 2) in
        (match (pressured, !pressure_since) with
        | true, None -> pressure_since := Some t_now
        | false, _ -> pressure_since := None
        | true, Some _ -> ());
        let active =
          match !pressure_since with Some s -> t_now -. s >= after | None -> false
        in
        if active <> !brownout then begin
          brownout := active;
          Obs.Metrics.set m_brownout (if active then 1.0 else 0.0);
          Trace.instant
            ~args:[ ("queued", Obs.Jtext.Int (Admission.queued adm)) ]
            (if active then "brownout-enter" else "brownout-exit");
          Log.warn
            (if active then "brownout-enter" else "brownout-exit")
            [ ("queued", Obs.Jtext.Int (Admission.queued adm)) ]
        end
  in
  (* internal id -> (client, original id, parsed job, request span).
     The request span opens at admission and closes when the reply is
     delivered (or the job is cancelled/shed) — the serve-side hop of
     the stitched trace, parenting the engine's [job] span. *)
  let owners : (string, int * string * job * Trace.handle option) Hashtbl.t =
    Hashtbl.create 64
  in
  let close_request ?(outcome = "") h =
    Option.iter
      (fun h ->
        Trace.close_span
          ~args:(if outcome = "" then [] else [ ("outcome", Obs.Jtext.Str outcome) ])
          h)
      h
  in
  let draining = ref false in
  (* SIGTERM/SIGINT request a graceful drain. The handler only flips a
     flag; everything observable — stop accepting, shed queued work,
     flush, release the journal lock, final trace flush — happens in
     the loop below, not in signal context. *)
  let install s behavior =
    match Sys.signal s behavior with
    | old -> Some (s, old)
    | exception Invalid_argument _ -> None
    | exception Sys_error _ -> None
  in
  let saved_signals =
    List.filter_map Fun.id
      [
        install Sys.sigterm (Sys.Signal_handle (fun _ -> draining := true));
        install Sys.sigint (Sys.Signal_handle (fun _ -> draining := true));
        (* A write to a client whose peer vanished must surface as EPIPE
           (handled per client in {!Transport}), not kill the server. *)
        install Sys.sigpipe Sys.Signal_ignore;
      ]
  in
  let update_serve_gauges () =
    Obs.Metrics.set m_serve_clients (float_of_int (List.length (Transport.clients tr)));
    Obs.Metrics.set m_serve_queued (float_of_int (Admission.queued adm));
    Obs.Metrics.set m_serve_inflight (float_of_int (Admission.inflight adm));
    Obs.Metrics.set m_serve_draining (if !draining then 1.0 else 0.0)
  in
  let find_client cid =
    List.find_opt (fun c -> Transport.cid c = cid) (Transport.clients tr)
  in
  (* [admit] and the transport-event handler are mutually recursive (a
     send can surface a [Dead] event, whose handling is policy): tie the
     knot with a forward reference. *)
  let tev_handler = ref (fun (_ : Transport.event) -> ()) in
  let handle_tevs evs = List.iter (fun ev -> !tev_handler ev) evs in
  let deliver cid r =
    match find_client cid with
    | None ->
        (* The client died while the job was inflight: the answer is
           settled, journaled and cached — only delivery is impossible. *)
        ()
    | Some c -> handle_tevs (Transport.send tr c (reply_to_json r))
  in
  let emit r =
    match Hashtbl.find_opt owners r.id with
    | None -> ()
    | Some (cid, orig, j, rspan) ->
        Hashtbl.remove owners r.id;
        Hashtbl.remove deadlines r.id;
        Admission.settled adm cid;
        close_request ~outcome:(verdict_name r.verdict) rspan;
        let r = { r with id = orig } in
        let digest = Journal.canonical_digest j in
        Option.iter
          (fun jl -> Journal.append jl (Journal.Done { id = orig; digest; reply = r }))
          jnl;
        Cache.store cache ~digest r;
        deliver cid r
  in
  let on_dispatch (t : task) =
    match (jnl, Hashtbl.find_opt owners t.job.id) with
    | Some jl, Some (_, orig, j, _) ->
        Journal.append jl
          (Journal.Started { id = orig; digest = Journal.canonical_digest j })
    | _ -> ()
  in
  let e = create_engine cfg ~emit ~on_dispatch in
  let total_load () = Admission.queued adm + engine_load e in
  (* Move admitted jobs into the engine only while a worker is idle and
     nothing is already waiting there: keeping the backlog in the
     per-client queues is what makes the round-robin fair. A popped job
     whose end-to-end deadline already expired in the queue is shed here
     — a retriable [deadline_exceeded] reply, no worker, no journal
     entry. Under brownout, non-interactive work leaves the queue with a
     degraded budget (the retry divisor, applied once). *)
  let feed () =
    let continue = ref true in
    while !continue do
      if Pool.idle_count e.pool > 0 && Queue.is_empty e.pending then begin
        match Admission.next adm with
        | Some (cid, (j : job)) -> begin
            let dl = Hashtbl.find_opt deadlines j.id in
            match dl with
            | Some d when d <= now_s () ->
                Obs.Metrics.incr m_deadline_exceeded;
                (match Hashtbl.find_opt owners j.id with
                | Some (_, orig, _, rspan) ->
                    Hashtbl.remove owners j.id;
                    Hashtbl.remove deadlines j.id;
                    Admission.settled adm cid;
                    close_request ~outcome:"deadline_exceeded" rspan;
                    Log.warn "deadline-exceeded"
                      [ ("cid", Obs.Jtext.Int cid); ("id", Obs.Jtext.Str orig) ];
                    deliver cid
                      (failed ~retriable:true ~id:orig ~kind:"deadline_exceeded"
                         "deadline expired while queued for admission")
                | None -> Admission.settled adm cid)
            | _ ->
                let j =
                  if !brownout && priority_class j.priority < 2 then begin
                    Obs.Metrics.incr m_brownout_degraded;
                    Trace.instant
                      ~args:
                        [ ("id", Obs.Jtext.Str j.id); ("reason", Obs.Jtext.Str "brownout") ]
                      "degrade";
                    { j with budget = degrade_budget ~degrade:cfg.degrade j.budget }
                  end
                  else j
                in
                submit ?deadline_abs:dl e j;
                dispatch_ready e
          end
        | None -> continue := false
      end
      else continue := false
    done
  in
  let cancel_client c =
    let cid = Transport.cid c in
    List.iter
      (fun (j : job) ->
        (match Hashtbl.find_opt owners j.id with
        | Some (_, _, _, rspan) -> close_request ~outcome:"cancelled" rspan
        | None -> ());
        Hashtbl.remove owners j.id;
        Hashtbl.remove deadlines j.id;
        Obs.Metrics.incr m_serve_cancelled)
      (Admission.cancel adm cid);
    (* A disconnected client's job that is inflight AND hedged is holding
       two workers for an answer nobody will read: kill both attempts and
       release the admission slot. (A single-worker inflight job still
       settles — journal and cache keep the answer — as serve always
       has.) *)
    let owned =
      Hashtbl.fold (fun iid (ocid, _, _, _) acc -> if ocid = cid then iid :: acc else acc)
        owners []
    in
    List.iter
      (fun iid ->
        match Hashtbl.find_opt e.inflight iid with
        | Some t when t.hedged && (t.primary_up || t.hedge_up) ->
            abort_task e t;
            (match Hashtbl.find_opt owners iid with
            | Some (_, _, _, rspan) -> close_request ~outcome:"cancelled" rspan
            | None -> ());
            Hashtbl.remove owners iid;
            Hashtbl.remove deadlines iid;
            Admission.settled adm cid;
            Obs.Metrics.incr m_serve_cancelled
        | _ -> ())
      owned
  in
  (* An HTTP GET on the job socket is a metrics scrape: answer with one
     HTTP/1.0 response and close. [/metrics] is the full Prometheus
     exposition; [/metrics/counters] restricts it to counters, which are
     deterministic under a seeded fault plan (gauges and histograms
     carry wall-clock noise) — the byte-stable variant CI diffs. *)
  let handle_http c line =
    match String.split_on_char ' ' line with
    | "GET" :: target :: _ ->
        update_serve_gauges ();
        let respond status ctype body =
          handle_tevs
            (Transport.send tr c
               (Printf.sprintf
                  "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
                  status ctype (String.length body) body))
        in
        Log.debug "scrape"
          [ ("cid", Obs.Jtext.Int (Transport.cid c)); ("target", Obs.Jtext.Str target) ];
        (match target with
        | "/metrics" ->
            respond "200 OK" "text/plain; version=0.0.4" (Obs.Metrics.prometheus_string ())
        | "/metrics/counters" ->
            respond "200 OK" "text/plain; version=0.0.4"
              (Obs.Metrics.prometheus_string ~only_counters:true ())
        | _ -> respond "404 Not Found" "text/plain" "not found\n");
        Transport.close_after_flush tr c
    | _ -> ()
  in
  (* At the admission cap, an arrival of class P may evict the oldest
     queued job of a class strictly below P: the victim gets the same
     retriable [overloaded] reply a plain shed produces, and the arrival
     takes its slot. Returns whether a slot was freed. *)
  let shed_lower_priority ~than =
    match Admission.steal_lowest adm ~below:(priority_class than) with
    | None -> false
    | Some (vcid, (vjob : job)) ->
        Obs.Metrics.incr m_shed;
        (match Hashtbl.find_opt owners vjob.id with
        | Some (_, orig, _, rspan) ->
            Hashtbl.remove owners vjob.id;
            Hashtbl.remove deadlines vjob.id;
            close_request ~outcome:"shed" rspan;
            Log.warn "priority-evict"
              [
                ("cid", Obs.Jtext.Int vcid);
                ("id", Obs.Jtext.Str orig);
                ("priority", Obs.Jtext.Str vjob.priority);
              ];
            deliver vcid
              (failed ~retriable:true ~id:orig ~kind:"overloaded"
                 "queue full; evicted for higher-priority work; resubmit later")
        | None -> ());
        true
  in
  let admit c line =
    if String.trim line = "" then ()
    else if String.starts_with ~prefix:"GET " line then handle_http c line
    else
      let send_reply r = handle_tevs (Transport.send tr c (reply_to_json r)) in
      match Json.parse line with
      | Ok v when is_stats_request v ->
          let id =
            Option.value ~default:"" (Option.bind (Json.member "id" v) Json.to_str_opt)
          in
          update_serve_gauges ();
          handle_tevs (Transport.send tr c (stats_line id))
      | _ -> begin
          match job_of_json line with
          | Error msg ->
              send_reply (failed ~id:"" ~kind:"bad-job" "unparseable job line: %s" msg);
              (* A malformed line poisons only this client: socket framing
                 after garbage is untrustworthy, so the connection closes
                 once the error reply flushes. The stdio client keeps the
                 historical tolerant behavior. *)
              if not (Transport.eof_drains c) then begin
                cancel_client c;
                Transport.close_after_flush tr c
              end
          | Ok job ->
              let cid = Transport.cid c in
              let iid = internal_id cid job.id in
              if Hashtbl.mem owners iid then
                send_reply
                  (failed ~id:job.id ~kind:"bad-job" "duplicate job id still in flight")
              else if !draining then
                send_reply
                  (failed ~retriable:true ~id:job.id ~kind:"overloaded"
                     "server draining; resubmit later")
              else if !brownout && priority_class job.priority = 0 then begin
                (* Brownout sheds batch work at the door: sustained
                   pressure means the queue is not going to reach it
                   before its usefulness expires anyway. *)
                Obs.Metrics.incr m_shed;
                Obs.Metrics.incr m_brownout_shed;
                Log.warn "brownout-shed"
                  [ ("cid", Obs.Jtext.Int cid); ("id", Obs.Jtext.Str job.id) ];
                send_reply
                  (failed ~retriable:true ~id:job.id ~kind:"overloaded"
                     "brownout: batch work shed under sustained overload; resubmit later")
              end
              else if
                total_load () >= cfg.queue_cap
                && not (shed_lower_priority ~than:job.priority)
              then begin
                (* Load shedding: a full queue answers immediately instead
                   of buffering without bound; the client may resubmit.
                   (A higher-priority arrival instead evicts the oldest
                   queued job of the lowest class — see
                   [shed_lower_priority] — and is admitted.) *)
                Obs.Metrics.incr m_shed;
                Log.warn "shed"
                  [ ("cid", Obs.Jtext.Int cid); ("id", Obs.Jtext.Str job.id) ];
                send_reply
                  (failed ~retriable:true ~id:job.id ~kind:"overloaded"
                     "queue full (%d jobs); resubmit later" cfg.queue_cap)
              end
              else begin
                (* The serve-side request span: parented by the client's
                   propagated context, parent of the engine's job span. *)
                let rspan =
                  Trace.open_span
                    ?parent:(Option.bind job.trace Trace.ctx_of_string)
                    ~args:[ ("cid", Obs.Jtext.Int cid); ("id", Obs.Jtext.Str job.id) ]
                    "request"
                in
                let digest = Journal.canonical_digest job in
                match Cache.find cache ~digest ~id:job.id with
                | Cache.Hit r ->
                    Trace.instant ~args:[ ("id", Obs.Jtext.Str job.id) ] "cache-hit";
                    close_request ~outcome:"cache-hit" rspan;
                    Option.iter
                      (fun jl ->
                        Journal.append jl (Journal.Done { id = job.id; digest; reply = r }))
                      jnl;
                    send_reply r
                | Cache.Miss | Cache.Cert_reject _ ->
                    Hashtbl.replace owners iid (cid, job.id, job, rspan);
                    (* The end-to-end clock starts now: queue time below
                       is the client's budget being spent. *)
                    Option.iter
                      (fun ms ->
                        Hashtbl.replace deadlines iid
                          (now_s () +. (float_of_int ms /. 1000.0)))
                      job.deadline_ms;
                    let trace =
                      match rspan with
                      | Some h -> Some (Trace.ctx_to_string (Trace.handle_ctx h))
                      | None -> job.trace
                    in
                    Admission.enqueue ~prio:(priority_class job.priority) adm cid
                      { job with id = iid; trace }
              end
        end
  in
  let handle_tev = function
    | Transport.Accepted c ->
        Trace.instant ~args:[ ("cid", Obs.Jtext.Int (Transport.cid c)) ] "client-accept"
    | Transport.Line (c, line) ->
        (* Lines split from the same read batch as a poisoning line
           still arrive as events; a closing client's input is dead.
           (A torn trailing line at EOF is [St_eof], not closing, and
           is still admitted.) *)
        if not (Transport.closing c) then admit c line
    | Transport.Eof c ->
        (* A zero read from a socket client means the peer is done
           sending — cancel its queued jobs. Inflight jobs still settle
           (journal, cache) and delivery is still attempted: the write
           half may outlive the read half. The stdio client instead
           drains to completion, as `serve` always has. *)
        if not (Transport.eof_drains c) then cancel_client c
    | Transport.Overlong c ->
        Log.warn "overlong-line" [ ("cid", Obs.Jtext.Int (Transport.cid c)) ];
        handle_tevs
          (Transport.send tr c
             (reply_to_json
                (failed ~id:"" ~kind:"bad-job" "input line exceeds the size limit")));
        cancel_client c
    | Transport.Dead (c, reason) ->
        Trace.instant
          ~args:
            [ ("cid", Obs.Jtext.Int (Transport.cid c)); ("reason", Obs.Jtext.Str reason) ]
          "client-dead";
        Log.info "client-dead"
          [ ("cid", Obs.Jtext.Int (Transport.cid c)); ("reason", Obs.Jtext.Str reason) ];
        cancel_client c
  in
  tev_handler := handle_tev;
  let owns_jobs cid =
    Hashtbl.fold (fun _ (ocid, _, _, _) acc -> acc || ocid = cid) owners false
  in
  (* A client at EOF with nothing owed and nothing buffered is done. *)
  let sweep () =
    List.iter
      (fun c ->
        if
          Transport.at_eof c
          && Transport.pending_out c = 0
          && not (owns_jobs (Transport.cid c))
        then Transport.drop tr c)
      (Transport.clients tr)
  in
  Fun.protect
    ~finally:(fun () ->
      (* The journal must close (releasing its lock) on every exit path,
         including a signal-initiated drain — a restarted server reopens
         it immediately. The trace sink is NOT finished here: it belongs
         to the process (the CLI flushes it [at_exit]), and an embedding
         caller may still have spans of its own open across this call. *)
      Option.iter Journal.close jnl;
      Transport.shutdown tr;
      Pool.shutdown e.pool;
      List.iter
        (fun (s, old) ->
          match Sys.set_signal s old with
          | () -> ()
          | exception Invalid_argument _ -> ()
          | exception Sys_error _ -> ())
        saved_signals)
    (fun () ->
      while
        (not !draining)
        && (Transport.listening tr || Transport.clients tr <> [] || total_load () > 0)
      do
        update_brownout ();
        feed ();
        (* Promote backed-off retries even when admission has nothing new
           to feed: a crashed job's delayed retry must re-dispatch on its
           own — [engine_timeout] wakes the poll for exactly this. *)
        dispatch_ready e;
        update_serve_gauges ();
        let extra = Transport.read_fds ~accepting:(not !draining) tr in
        let extra_write = Transport.write_fds tr in
        let events = Pool.poll ~extra ~extra_write ~timeout:(engine_timeout e) e.pool in
        List.iter
          (function
            | Pool.Input fd -> handle_tevs (Transport.handle_readable tr fd)
            | Pool.Writable fd -> handle_tevs (Transport.handle_writable tr fd)
            | ev -> handle_event e ev)
          events;
        handle_tevs (Transport.check_timeouts tr);
        feed ();
        sweep ()
      done;
      if !draining then begin
        update_serve_gauges ();
        (* Graceful drain: stop accepting, shed everything still queued
           (retriable — a resubmission after restart can succeed), give
           inflight jobs [drain_grace] seconds to settle, flush what the
           clients will take, exit. *)
        Transport.close_listeners tr;
        List.iter
          (fun c ->
            List.iter
              (fun (j : job) ->
                match Hashtbl.find_opt owners j.id with
                | None -> ()
                | Some (_, orig, _, rspan) ->
                    Hashtbl.remove owners j.id;
                    Obs.Metrics.incr m_serve_cancelled;
                    close_request ~outcome:"shed" rspan;
                    handle_tevs
                      (Transport.send tr c
                         (reply_to_json
                            (failed ~retriable:true ~id:orig ~kind:"overloaded"
                               "server draining; resubmit later"))))
              (Admission.cancel adm (Transport.cid c)))
          (Transport.clients tr);
        let deadline = now_s () +. scfg.drain_grace in
        while Hashtbl.length owners > 0 && now_s () < deadline do
          dispatch_ready e;
          let extra_write = Transport.write_fds tr in
          let timeout = Float.min 0.1 (Float.max 0.01 (deadline -. now_s ())) in
          List.iter
            (function
              | Pool.Input _ -> ()
              | Pool.Writable fd -> handle_tevs (Transport.handle_writable tr fd)
              | ev -> handle_event e ev)
            (Pool.poll ~extra_write ~timeout e.pool)
        done;
        (* Whatever outlived the grace period is shed too; its [Started]
           journal entry records that it never settled. *)
        let leftovers = Hashtbl.fold (fun iid own acc -> (iid, own) :: acc) owners [] in
        List.iter
          (fun (iid, (cid, orig, _, rspan)) ->
            Hashtbl.remove owners iid;
            Obs.Metrics.incr m_serve_cancelled;
            close_request ~outcome:"shed" rspan;
            deliver cid
              (failed ~retriable:true ~id:orig ~kind:"overloaded"
                 "server draining; job did not settle within the grace period"))
          leftovers;
        (* Final flush, bounded: a slow reader does not hold up the exit. *)
        let flush_deadline = now_s () +. 1.0 in
        while
          now_s () < flush_deadline
          && List.exists (fun c -> Transport.pending_out c > 0) (Transport.clients tr)
        do
          let extra_write = Transport.write_fds tr in
          List.iter
            (function
              | Pool.Writable fd -> handle_tevs (Transport.handle_writable tr fd)
              | _ -> ())
            (Pool.poll ~extra_write ~timeout:0.05 e.pool)
        done;
        update_serve_gauges ()
      end)

let serve cfg ic oc =
  serve_sockets ~stdio:(ic, oc)
    { default_serve_config with base = cfg; cache_entries = 0 }
