(** Crash-consistent write-ahead job journal (v2) for resumable batch
    runs.

    [rpq batch] appends one record per event — [Started] when a job is
    first dispatched, [Done] with the full reply when it settles — so
    that after a crash (or a SIGKILL of the supervisor itself) a re-run
    with the same journal skips every settled job and recomputes only
    the rest.

    {2 On-disk format (v2)}

    {v
    rpq-journal-v2\n                          header line
    <len>:<crc>:<seq>:<payload>\n             one line per record
    v}

    where [payload] is the entry's {!Proto.Json} line (human-greppable,
    schema-shared with the wire protocol), [len] its byte length
    (self-delimiting framing), [crc] the CRC32 (IEEE) of
    ["<seq>:<payload>"] as 8 lowercase hex digits, and [seq] a strictly
    increasing sequence number from 1. A file without the header is a v1
    journal (PR 3's bare JSON lines): still loadable, read-only;
    {!open_append} migrates it to v2 in place (atomic rewrite) before
    appending.

    {2 Recovery semantics}

    {!load} distinguishes, byte-precisely:
    {ul
    {- a {b torn tail} — the final record is a strict prefix of a valid
       frame, or a complete {e final} record whose checksum fails: the
       expected artifact of dying mid-append. The good prefix loads, the
       tail is reported (and truncated away by the next {!open_append});}
    {- {b corruption} — a checksum or framing failure {e before} the last
       record, a bad payload in a checksummed frame, or a sequence
       regression: the file is not a trustworthy journal, and [load]
       refuses with a [file:line] error rather than silently dropping
       settled answers.}} *)

type entry =
  | Started of { id : string; digest : string }
  | Done of { id : string; digest : string; reply : Proto.reply }

val job_digest : Proto.job -> string
(** Hex digest of the canonical job encoding (with its {e original}
    budget). Resume matches on both id and digest, so editing a job in the
    jobfile invalidates its recorded answer instead of silently reusing
    it. Delivery-only fields ([deadline_ms], [priority], trace context)
    are excluded from the canonical encoding: the same query at a
    different priority or deadline digests — and therefore resumes and
    caches — identically. A hedged job journals exactly one [Done] entry
    (the certificate-checked winner); the speculative loser is aborted
    before settlement, so hedged and unhedged runs produce byte-identical
    journals modulo wall-clock fields. *)

val canonical_digest : Proto.job -> string
(** {!job_digest} with the job's id blanked, so two clients submitting
    the same work under different ids agree on one key. The serve loop
    journals and caches under this digest; batch journals use
    {!job_digest}, keeping resume strictly per-submission. *)

val entry_to_json : entry -> string
(** The record {e payload} — framing (length, checksum, sequence) is
    added by {!append}. *)

val entry_of_json : string -> (entry, string) result

type version = V1 | V2

type torn =
  | Truncated  (** the final record is a strict prefix of a valid frame *)
  | Bad_checksum  (** the final record is complete but its CRC fails *)

type report = {
  entries : entry list;  (** every intact record, in file order *)
  version : version;
  records : int;  (** [List.length entries] *)
  bytes : int;  (** total file size *)
  dead_bytes : int;
      (** bytes a {!compact} would reclaim: [Started] records, [Done]
          records superseded by a later one for the same id, and the torn
          tail *)
  torn_bytes : int;  (** trailing bytes discarded as a torn write *)
  torn : torn option;  (** why the tail was discarded, if it was *)
  last_seq : int;  (** highest sequence number seen; 0 for empty or v1 *)
}

val load : string -> (report, string) result
(** Reads a journal back. A missing file is an empty journal. A torn tail
    is tolerated and reported; mid-file corruption (checksum, framing,
    sequence regression) is an [Error] carrying a [path:line] position —
    resuming from such a file would silently drop results. *)

val completed : entry list -> (string, string * Proto.reply) Hashtbl.t
(** Settled jobs by id, mapping to [(digest, reply)]; for duplicate ids
    the last [Done] entry wins. *)

type sync =
  | Never  (** flush to the OS only: fastest, loses on power cut *)
  | Per_line  (** [Unix.fsync] after every record *)
  | Per_job
      (** [Unix.fsync] after every [Done] record only — settlements are
          durable, [Started] markers ride along on the next sync *)

type t

val open_append : ?sync:sync -> ?compact_ratio:float -> string -> (t, string) result
(** Opens the journal for appending, creating it if missing. Eager, and
    exclusive: the file is locked ([Unix.lockf], plus an in-process
    registry — record locks do not exclude within one process) so two
    supervisors cannot interleave records; a held lock is an [Error].
    On open, a v1 journal is migrated to v2 and a journal whose dead-byte
    ratio is at least [compact_ratio] (default 0.5) is auto-compacted —
    both via the atomic rewrite of {!compact} — and a torn tail is
    truncated, so appends always extend a clean prefix. New records
    continue the sequence from the last intact one. [sync] defaults to
    [Per_job]. Corruption refuses exactly as {!load} does. *)

val append : t -> entry -> unit
(** Frames and appends one record, then runs the single sync point:
    flush always, [Unix.fsync] per the open's [sync] policy. Observed in
    the [runner.journal_append_s] histogram (and [journal.fsync_s] for
    the fsync part). Crash sites [journal.pre_append],
    [journal.pre_fsync] and [journal.post_append] fire here (see
    {!Resilience.Faults.crash_site}). *)

val close : t -> unit
(** Flushes, releases the lock, closes. *)

type compact_stats = {
  kept : int;  (** records in the rewritten journal *)
  dropped : int;
  before_bytes : int;
  after_bytes : int;
}

val compact : string -> (compact_stats, string) result
(** Rewrites the journal to only the last [Done] record per job id,
    resequenced from 1, via write-temp + fsync + rename (+ directory
    fsync), so a crash at any point leaves either the old or the new
    journal intact — never a mix (crash site [journal.mid_compact] fires
    between the temp fsync and the rename). Takes the same exclusive
    lock as {!open_append}; also migrates v1 files to v2. Timed in the
    [journal.compact_s] histogram. *)
