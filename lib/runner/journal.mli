(** Write-ahead job journal for resumable batch runs.

    [rpq batch] appends one line per event — [Started] when a job is first
    dispatched, [Done] with the full reply when it settles — flushing each
    line, so that after a crash (or a SIGKILL of the supervisor itself) a
    re-run with the same journal skips every settled job and recomputes
    only the rest. Entries are {!Proto.Json} lines, human-greppable and
    schema-shared with the wire protocol. *)

type entry =
  | Started of { id : string; digest : string }
  | Done of { id : string; digest : string; reply : Proto.reply }

val job_digest : Proto.job -> string
(** Hex digest of the canonical job encoding (with its {e original}
    budget). Resume matches on both id and digest, so editing a job in the
    jobfile invalidates its recorded answer instead of silently reusing
    it. *)

val entry_to_json : entry -> string
val entry_of_json : string -> (entry, string) result

type t

val open_append : string -> t
(** Opens (lazily, on first {!append}) the journal at this path for
    appending, creating it if missing. *)

val append : t -> entry -> unit
(** Appends one line and flushes — the write-ahead property depends on the
    per-line flush. *)

val close : t -> unit

val load : string -> (entry list, string) result
(** Reads a journal back. A missing file is an empty journal. A malformed
    {e final} line is tolerated (torn write from a crash mid-append); a
    malformed line anywhere else is an error — the file is likely not a
    journal, and resuming from it would silently drop results. *)

val completed : entry list -> (string, string * Proto.reply) Hashtbl.t
(** Settled jobs by id, mapping to [(digest, reply)]; for duplicate ids
    the last [Done] entry wins. *)
