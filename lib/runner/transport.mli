(** Multi-client transport for the serve loop.

    The single owner of every socket endpoint in the tree (the rpq_lint
    [socket] capability is granted to the slug [runner/transport] alone)
    plus the per-connection state machines the multi-client server needs:

    {ul
    {- {b line framing}: partial reads accumulate per client and surface
       as whole {!Line} events; a torn trailing line at EOF is delivered
       before the {!Eof} event;}
    {- {b bounded buffers with backpressure}: output is buffered per
       client and flushed as the fd accepts it; past [out_cap] buffered
       bytes the client's {e input} fd leaves {!read_fds}, so a client
       that stops reading replies stops being able to submit; an input
       line beyond [max_line] yields one {!Overlong} event and poisons
       only that client;}
    {- {b slow/dead-client policy}: a write stalled beyond
       [write_timeout] (no byte left the buffer), a failed write
       (EPIPE), or an injected [net:client_drop] declares the client
       {!Dead} and removes it; a zero read is an orderly {!Eof} — reads
       stop, but buffered and future replies still flush, which is how
       the serve loop honors "cancel queued jobs, never settled
       results";}
    {- {b net-fault sites} ({!Resilience.Faults.net_site}):
       [accept_fail] loses a just-accepted connection, [client_drop]
       severs a live client, [partial_write] halves a flush (content is
       unchanged — the suffix stays buffered).}}

    The module never interprets payloads and never owns the event loop:
    the serve loop passes {!read_fds}/{!write_fds} to {!Pool.poll} and
    routes readiness back through {!handle_readable}/{!handle_writable}. *)

type client
type t

type event =
  | Accepted of client  (** a listener produced a new connection *)
  | Line of client * string  (** one complete input line, without the newline *)
  | Eof of client
      (** orderly zero-read; the client stays registered for output
          until dropped by the caller *)
  | Overlong of client
      (** an input line exceeded [max_line]: framing is lost, input is
          stopped, the client is [close_after_flush]-poisoned; the
          caller may still {!send} one last error reply *)
  | Dead of client * string
      (** broken pipe, stalled write, read error, or an injected drop;
          already removed — the payload is the reason *)

val create : ?max_line:int -> ?out_cap:int -> ?write_timeout:float -> unit -> t
(** Defaults: 1 MiB line limit, 1 MiB output backpressure threshold,
    30 s write stall timeout. *)

(** {2 Client accessors} *)

val cid : client -> int
(** Dense, never reused within a transport. *)

val eof_drains : client -> bool
val at_eof : client -> bool
val is_live : client -> bool

val closing : client -> bool
(** The client is [close_after_flush]-poisoned: its remaining output
    will flush, but no further input should be acted on (lines already
    split from the same read batch may still arrive as events). *)

val pending_out : client -> int
val clients : t -> client list
val listening : t -> bool

(** {2 Endpoints} *)

val listen_unix : string -> Unix.file_descr
(** Binds and listens on a Unix-domain socket path, unlinking a stale
    socket file first (anything else at the path makes bind fail). *)

val listen_tcp : int -> Unix.file_descr
(** Binds and listens on loopback only — remote serving is a deployment
    concern, not this module's. Port 0 asks the kernel for a free port;
    recover it with {!bound_port}. *)

val bound_port : Unix.file_descr -> int option

val connect_unix : string -> in_channel * out_channel
val connect_tcp : int -> in_channel * out_channel
(** Client-side connect, returned as channels so callers (tests, the
    CLI's chaos clients) never hold a raw socket fd — the lint [socket]
    capability stays confined here. Close both channels to close the
    connection. *)

val pair : unit -> Unix.file_descr * Unix.file_descr
(** A connected [socketpair], for tests that drive a client state
    machine directly. *)

val channels_of_fd : Unix.file_descr -> in_channel * out_channel
(** Wrap a connected socket fd as a channel pair (the read channel owns
    the fd, the write channel a dup): closing both closes both
    directions exactly once. What {!connect_unix}/{!connect_tcp} return;
    exposed for callers holding a {!pair} end. *)

val shutdown_send : out_channel -> unit
(** Flush, then half-close the sending direction of a connected socket
    channel (from {!connect_unix}/{!connect_tcp}/{!channels_of_fd}): the
    server observes an orderly EOF while replies keep flowing back. *)

(** {2 Lifecycle} *)

val add_listener : t -> Unix.file_descr -> unit

val add_client :
  t -> ?eof_drains:bool -> ?owns_fds:bool -> in_fd:Unix.file_descr -> out_fd:Unix.file_descr -> unit -> client
(** Registers a pre-connected client (the stdio pair, or a test's
    socketpair end). [eof_drains] (default false) marks EOF as "drain
    then finish" rather than "peer is gone"; [owns_fds] (default true)
    closes the fds on drop. *)

val drop : t -> client -> unit
(** Removes the client, closing its fds if owned. Idempotent. *)

val close_after_flush : t -> client -> unit
(** Stops the client's input and drops it once its output buffer
    drains (or immediately if empty); a subsequent stall or write error
    drops it silently, without a {!Dead} event. *)

val close_listeners : t -> unit
(** Stop accepting (the graceful-drain first step). *)

val shutdown : t -> unit

(** {2 The select-loop surface} *)

val read_fds : ?accepting:bool -> t -> Unix.file_descr list
(** Listener fds (unless [accepting:false]) plus the input fds of open
    clients under the backpressure threshold. *)

val write_fds : t -> Unix.file_descr list
(** Output fds of clients with buffered output pending. *)

val handle_readable : t -> Unix.file_descr -> event list
(** Dispatch one readable fd: accept on a listener (site
    [accept_fail]), else read the matching client (site [client_drop]),
    returning the events in input order. Unknown fds yield []. *)

val handle_writable : t -> Unix.file_descr -> event list

val send : t -> client -> string -> event list
(** Buffers [line ^ "\n"] and flushes opportunistically (site
    [partial_write]). No-op on a dead client. The returned events are
    at most one [Dead] from a failed immediate flush. *)

val check_timeouts : t -> event list
(** Declares clients whose writes stalled beyond the timeout dead. Call
    once per loop iteration. *)
