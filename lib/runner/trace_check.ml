(* Trace-file validator: the checking half of the telemetry layer, kept
   in the library so tests exercise the same code path `rpq trace-check`
   runs in CI.

   A JSONL trace may be the concatenation of files from several
   processes (a traced client, the serve supervisor with its workers'
   re-emitted spans): each segment opens with a meta record whose [t0]
   (integer microseconds) re-anchors the relative timestamps that
   follow, so all spans land on one absolute time axis. Three families
   of checks:

   - every event parses (with the strict Proto JSON reader) and has the
     structural fields its type requires;
   - depth containment, per process: a depth-d+1 span lies inside some
     depth-d span of the same pid — the single-process well-nestedness
     the pre-propagation checker enforced;
   - parent containment, by identity: a span naming a [psid] must find
     that span in the file (else it is an orphan), share its trace id,
     and lie inside it on the absolute axis. Spans a dead worker never
     closed arrive synthesized with [interrupted:true] and must pass the
     same containment — their stop time is the supervisor's
     death-detection instant, inside the still-open job span. *)

module Json = Proto.Json

type span = {
  sname : string;
  sstart : float;  (* absolute seconds *)
  sstop : float;
  sdepth : int;
  spid : int;
  stid : string option;
  ssid : string option;
  spsid : string option;
}

type stats = {
  events : int;
  spans : int;
  processes : int;  (** distinct pids across spans and meta records *)
  traces : int;  (** distinct trace ids *)
}

(* Timestamps render with 9 significant digits and the epoch quantizes
   to 1 µs: allow a few µs of slack in every interval comparison. *)
let eps = 5e-6

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let get v f conv = Option.bind (Json.member f v) conv

(* ---- one event, JSONL form ---- *)

type parsed = P_meta of { pid : int option; t0 : float; tid : string option } | P_span of span | P_instant

let span_of_jsonl ~t0 v =
  match
    ( get v "name" Json.to_str_opt,
      get v "ts" Json.to_float_opt,
      get v "dur" Json.to_float_opt,
      get v "depth" Json.to_int_opt,
      get v "pid" Json.to_int_opt )
  with
  | Some sname, Some ts, Some dur, Some sdepth, Some spid ->
      Ok
        {
          sname;
          sstart = t0 +. ts;
          sstop = t0 +. ts +. dur;
          sdepth;
          spid;
          stid = get v "tid" Json.to_str_opt;
          ssid = get v "sid" Json.to_str_opt;
          spsid = get v "psid" Json.to_str_opt;
        }
  | _ -> Error "span event with missing or mistyped fields"

let parse_jsonl_event ~t0 v =
  match get v "ev" Json.to_str_opt with
  | Some "meta" -> begin
      match get v "t0" Json.to_float_opt with
      | Some us ->
          Ok (P_meta { pid = get v "pid" Json.to_int_opt; t0 = us *. 1e-6; tid = get v "tid" Json.to_str_opt })
      | None -> Error "meta event without a \"t0\" field"
    end
  | Some "span" ->
      let* s = span_of_jsonl ~t0 v in
      Ok (P_span s)
  | Some "instant" -> Ok P_instant
  | Some ev -> err "unexpected event type %S" ev
  | None -> Error "event without an \"ev\" field"

(* ---- one event, Chrome form (ids ride in args, µs timestamps) ---- *)

let parse_chrome_event v =
  let arg f conv = Option.bind (get v "args" Option.some) (fun a -> get a f conv) in
  match get v "ph" Json.to_str_opt with
  | Some "X" -> begin
      match
        ( get v "name" Json.to_str_opt,
          get v "ts" Json.to_float_opt,
          get v "dur" Json.to_float_opt,
          arg "depth" Json.to_int_opt,
          get v "pid" Json.to_int_opt )
      with
      | Some sname, Some ts, Some dur, Some sdepth, Some spid ->
          Ok
            (P_span
               {
                 sname;
                 sstart = ts /. 1e6;
                 sstop = (ts +. dur) /. 1e6;
                 sdepth;
                 spid;
                 stid = arg "tid" Json.to_str_opt;
                 ssid = arg "sid" Json.to_str_opt;
                 spsid = arg "psid" Json.to_str_opt;
               })
      | _ -> Error "complete (ph=X) event with missing or mistyped fields"
    end
  | Some "i" -> Ok P_instant
  | Some ph -> err "unexpected event phase %S" ph
  | None -> Error "event without a \"ph\" field"

(* ---- whole-file checks ---- *)

let contains p c = p.sstart -. eps <= c.sstart && c.sstop <= p.sstop +. eps

let check_depth_containment spans =
  let rec go = function
    | [] -> Ok ()
    | c :: rest ->
        if
          c.sdepth > 0
          && not
               (List.exists
                  (fun p -> p.spid = c.spid && p.sdepth = c.sdepth - 1 && contains p c)
                  spans)
        then
          err "span %S (pid %d, depth %d, ts %.6fs) is not contained in any depth-%d span"
            c.sname c.spid c.sdepth c.sstart (c.sdepth - 1)
        else go rest
  in
  go spans

let check_parents spans =
  let by_sid = Hashtbl.create 64 in
  List.iter
    (fun s -> match s.ssid with Some sid -> Hashtbl.replace by_sid sid s | None -> ())
    spans;
  let rec go = function
    | [] -> Ok ()
    | c :: rest -> begin
        match c.spsid with
        | None -> go rest
        | Some psid -> begin
            match Hashtbl.find_opt by_sid psid with
            | None ->
                err "orphan span %S (pid %d, sid %s): parent %s is not in the trace" c.sname
                  c.spid
                  (Option.value ~default:"?" c.ssid)
                  psid
            | Some p ->
                if c.stid <> None && p.stid <> None && c.stid <> p.stid then
                  err "span %S and its parent %S are in different traces (%s vs %s)" c.sname
                    p.sname
                    (Option.value ~default:"?" c.stid)
                    (Option.value ~default:"?" p.stid)
                else if not (contains p c) then
                  err
                    "span %S [%.6f, %.6f] (pid %d) escapes its parent %S [%.6f, %.6f] (pid %d)"
                    c.sname c.sstart c.sstop c.spid p.sname p.sstart p.sstop p.spid
                else go rest
          end
      end
  in
  go spans

let finish_stats ~events ~spans ~pids ~tids =
  {
    events;
    spans = List.length spans;
    processes = List.length (List.sort_uniq compare pids);
    traces = List.length (List.sort_uniq compare tids);
  }

let check_events parsed =
  let spans = List.filter_map (function P_span s -> Some s | _ -> None) parsed in
  let pids =
    List.filter_map
      (function P_span s -> Some s.spid | P_meta { pid; _ } -> pid | P_instant -> None)
      parsed
  in
  let tids =
    List.filter_map
      (function P_span s -> s.stid | P_meta { tid; _ } -> tid | P_instant -> None)
      parsed
  in
  let* () = check_depth_containment spans in
  let* () = check_parents spans in
  Ok (finish_stats ~events:(List.length parsed) ~spans ~pids ~tids)

let check_jsonl_string contents =
  let lines = String.split_on_char '\n' contents in
  let rec parse_all acc t0 lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest when String.trim line = "" -> parse_all acc t0 (lineno + 1) rest
    | line :: rest -> begin
        match Json.parse line with
        | Error e -> err "line %d: %s" lineno e
        | Ok v -> begin
            match parse_jsonl_event ~t0 v with
            | Error e -> err "line %d: %s" lineno e
            | Ok (P_meta m as p) -> parse_all (p :: acc) m.t0 (lineno + 1) rest
            | Ok p -> parse_all (p :: acc) t0 (lineno + 1) rest
          end
      end
  in
  let* parsed = parse_all [] 0.0 1 lines in
  check_events parsed

let check_chrome_string contents =
  let* v = Json.parse contents in
  match v with
  | Json.List evs ->
      let rec parse_all acc = function
        | [] -> Ok (List.rev acc)
        | e :: rest ->
            let* p = parse_chrome_event e in
            parse_all (p :: acc) rest
      in
      let* parsed = parse_all [] evs in
      check_events parsed
  | _ -> Error "a Chrome trace must be one JSON array of events"

let check_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents ->
      let res =
        if Filename.check_suffix path ".jsonl" then check_jsonl_string contents
        else check_chrome_string contents
      in
      (match res with Error e -> err "%s: %s" path e | ok -> ok)
