(* Fork-isolated worker pool.

   Each worker is a forked child connected by two pipes: the parent writes
   job lines down [to_worker] and reads reply lines from [of_worker]. The
   framing is one line per message ([Proto.Json.to_string] never emits a
   raw newline). Workers are single-job: the supervisor only assigns to an
   idle worker, so a reply line always belongs to the single in-flight job.

   Fd hygiene is what makes death detection work: the child closes every
   parent-side fd of every worker (including its own), so when a child
   dies its [of_worker] pipe write end has no surviving holder and the
   parent's read returns EOF. Children exit with [Unix._exit], never
   [Stdlib.exit]: the fork duplicated the parent's buffered channels
   (stdout, any alcotest log), and exiting through at_exit would flush
   those copies a second time. *)

type death =
  | Exited of int  (** nonzero exit code *)
  | Signaled of int  (** killed by this signal, e.g. [Sys.sigkill] *)
  | Timed_out  (** overran the job deadline; died from the SIGTERM *)
  | Wedged  (** overran the deadline AND survived SIGTERM through grace *)
  | Malformed of string  (** replied, but not with a parseable reply line *)

let death_to_string = function
  | Exited c -> Printf.sprintf "worker exited with code %d" c
  | Signaled s -> Printf.sprintf "worker killed by signal %d" s
  | Timed_out -> "worker timed out"
  | Wedged -> "worker wedged (survived SIGTERM; SIGKILLed)"
  | Malformed line ->
      Printf.sprintf "worker sent a malformed reply: %s"
        (if String.length line > 100 then String.sub line 0 100 ^ "..." else line)

type worker = {
  mutable pid : int;
  mutable to_worker : Unix.file_descr;
  mutable of_worker : Unix.file_descr;
  buf : Buffer.t;  (** partial reply line read so far *)
  mutable job : (string * float) option;  (** (job id, absolute deadline) *)
  mutable term_sent : float option;
      (** when we SIGTERMed it for a timeout; SIGKILL after [grace] *)
  mutable wedged : bool;
      (** it outlived the SIGTERM grace period — ignoring or blocking the
          signal — and took the SIGKILL path *)
}

type config = { workers : int; job_timeout : float option; grace : float }

type t = {
  cfg : config;
  handler : string -> string;
  pool : worker array;
  mutable alive : bool;
}

type event =
  | Completed of { id : string; reply : string }
  | Crashed of { id : string; death : death }
  | Trace of { id : string; pid : int; line : string }
      (** one trace event streamed from the worker's pipe sink (the
          [Obs.Trace.pipe_prefix] marker already stripped) *)
  | Input of Unix.file_descr  (** an [~extra] fd is readable *)
  | Writable of Unix.file_descr  (** an [~extra_write] fd is writable *)

let now () = Unix.gettimeofday ()

let rec restart_eintr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_eintr f

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    let k = restart_eintr (fun () -> Unix.write fd b !off (n - !off)) in
    off := !off + k
  done

(* Runs in the child, forever: read one job line, run the handler, write
   one reply line. The handler is expected to catch its own exceptions and
   encode them as error replies; if it raises anyway, or the parent closes
   the pipe, we fall through to _exit. *)
let worker_loop handler to_child of_child =
  let ic = Unix.in_channel_of_descr to_child in
  let oc = Unix.out_channel_of_descr of_child in
  (* The supervisor may have installed flight-dump signal handlers; a
     worker must die plainly (its death IS the signal the supervisor
     classifies) and must not clobber the supervisor's dump file. *)
  (try Sys.set_signal Sys.sigterm Sys.Signal_default with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint Sys.Signal_default with Invalid_argument _ | Sys_error _ -> ());
  Obs.Flight.disable ();
  (* If the supervisor is tracing, stream our spans back interleaved
     with (and marked distinct from) reply lines. Both writers flush
     whole lines and the process is single-threaded, so frames never
     tear. *)
  Obs.Trace.adopt_pipe oc;
  let status = ref 0 in
  (try
     while true do
       let line = input_line ic in
       let reply = handler line in
       output_string oc reply;
       output_char oc '\n';
       flush oc
     done
   with
  | End_of_file -> ()
  | _ -> status := 70 (* EX_SOFTWARE: handler raised or pipe broke *));
  Unix._exit !status

let spawn t =
  let job_r, job_w = Unix.pipe ~cloexec:false () in
  let reply_r, reply_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      (* Child: drop every parent-side fd, ours and our siblings'. (The
         inherited trace sink is rebound to the reply pipe inside
         [worker_loop]; until then nothing in this path emits events.) *)
      Unix.close job_w;
      Unix.close reply_r;
      Array.iter
        (fun w ->
          if w.pid <> 0 then begin
            (try Unix.close w.to_worker with Unix.Unix_error _ -> ());
            try Unix.close w.of_worker with Unix.Unix_error _ -> ()
          end)
        t.pool;
      worker_loop t.handler job_r reply_w
  | pid ->
      Unix.close job_r;
      Unix.close reply_w;
      {
        pid;
        to_worker = job_w;
        of_worker = reply_r;
        buf = Buffer.create 256;
        job = None;
        term_sent = None;
        wedged = false;
      }

let create cfg ~handler =
  if cfg.workers < 1 then invalid_arg "Pool.create: need at least one worker";
  if cfg.grace < 0.0 then invalid_arg "Pool.create: negative grace";
  (* A worker dying mid-write must not take the supervisor down with it. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let t =
    {
      cfg;
      handler;
      pool = Array.init cfg.workers (fun _ ->
          { pid = 0;
            to_worker = Unix.stdin;
            of_worker = Unix.stdin;
            buf = Buffer.create 0;
            job = None;
            term_sent = None;
            wedged = false });
      alive = true;
    }
  in
  Array.iteri (fun i _ -> t.pool.(i) <- spawn t) t.pool;
  t

let idle_count t =
  Array.fold_left (fun n w -> if w.job = None then n + 1 else n) 0 t.pool

let assign t ~id ?timeout ~payload () =
  if not t.alive then invalid_arg "Pool.assign: pool is shut down";
  let rec find i =
    if i >= Array.length t.pool then invalid_arg "Pool.assign: no idle worker"
    else if t.pool.(i).job = None then t.pool.(i)
    else find (i + 1)
  in
  let w = find 0 in
  (* The effective wall deadline is the tighter of the pool-wide cap and
     the caller's per-job budget (e.g. a client deadline's remainder). *)
  let wall =
    match t.cfg.job_timeout, timeout with
    | None, None -> infinity
    | Some s, None | None, Some s -> s
    | Some a, Some b -> Float.min a b
  in
  let deadline = if wall = infinity then infinity else now () +. wall in
  w.job <- Some (id, deadline);
  w.term_sent <- None;
  w.wedged <- false;
  (try write_all w.to_worker (payload ^ "\n")
   with Unix.Unix_error _ ->
     (* The worker died before we could write; the EOF on its reply pipe
        will surface the crash through [poll] as usual. *)
     ());
  (* A supervisor dying right after handing work out is the window where
     the journal has a [Started] but will never see the [Done]: resume
     must re-dispatch. The chaos harness arms this site to prove it. *)
  Resilience.Faults.crash_site "pool.post_dispatch"

let dead_worker t w status =
  let death =
    match w.term_sent, status with
    | Some _, _ -> if w.wedged then Wedged else Timed_out
    | None, Unix.WSIGNALED s -> Signaled s
    | None, Unix.WEXITED c -> Exited c
    | None, Unix.WSTOPPED s -> Signaled s
  in
  let id = match w.job with Some (id, _) -> id | None -> "" in
  (try Unix.close w.to_worker with Unix.Unix_error _ -> ());
  (try Unix.close w.of_worker with Unix.Unix_error _ -> ());
  (* Mark dead before forking the replacement: the new pipes may reuse the
     fd numbers just closed, and the child must not close them again when
     it sweeps the pool (it would sever its own ends). *)
  w.pid <- 0;
  let fresh = spawn t in
  w.pid <- fresh.pid;
  w.to_worker <- fresh.to_worker;
  w.of_worker <- fresh.of_worker;
  Buffer.clear w.buf;
  w.job <- None;
  w.term_sent <- None;
  w.wedged <- false;
  Obs.Log.info "worker-respawn"
    [
      ("death", Obs.Jtext.Str (death_to_string death));
      ("pid", Obs.Jtext.Int fresh.pid);
    ];
  if id = "" then None else Some (Crashed { id; death })

(* Reap a worker whose reply pipe hit EOF (or that we SIGKILLed). *)
let reap t w =
  let _, status = restart_eintr (fun () -> Unix.waitpid [] w.pid) in
  dead_worker t w status

(* Deliberate discard of an in-flight attempt (hedge loser, cancelled
   client): clear the assignment FIRST so the reap classifies an idle
   worker (no [Crashed] event — [dead_worker] only reports when a job id
   is attached) and any reply bytes already in the pipe are dropped as
   stray output, then SIGKILL and respawn. *)
let abort t ~id =
  if not t.alive then false
  else
    match Array.find_opt (fun w -> match w.job with Some (jid, _) -> jid = id | None -> false) t.pool
    with
    | None -> false
    | Some w ->
        w.job <- None;
        w.term_sent <- None;
        w.wedged <- false;
        Buffer.clear w.buf;
        (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (reap t w);
        true

let take_lines w =
  let s = Buffer.contents w.buf in
  let rec split acc start =
    match String.index_from_opt s start '\n' with
    | Some i -> split (String.sub s start (i - start) :: acc) (i + 1)
    | None ->
        Buffer.clear w.buf;
        Buffer.add_string w.buf (String.sub s start (String.length s - start));
        List.rev acc
  in
  split [] 0

let handle_readable t w events =
  let chunk = Bytes.create 65536 in
  match restart_eintr (fun () -> Unix.read w.of_worker chunk 0 65536) with
  | 0 -> begin
      (* EOF: the worker is gone (crash, or self-kill under [kill:N]). *)
      match reap t w with Some e -> e :: events | None -> events
    end
  | exception Unix.Unix_error _ -> begin
      match reap t w with Some e -> e :: events | None -> events
    end
  | n ->
      Buffer.add_subbytes w.buf chunk 0 n;
      let prefix = Obs.Trace.pipe_prefix in
      let plen = String.length prefix in
      List.fold_left
        (fun events line ->
          match w.job with
          | None ->
              (* A line with no job in flight: stray output from a worker
                 we already gave up on. Drop it. *)
              events
          | Some (id, _) ->
              if String.starts_with ~prefix line then
                (* Trace traffic does not settle the job: surface it for
                   the supervisor to stitch into its own sink. *)
                Trace { id; pid = w.pid; line = String.sub line plen (String.length line - plen) }
                :: events
              else begin
                (* One job in flight per worker, so this line settles it.
                   The engine decides whether the line parses; the pool
                   only frames. *)
                w.job <- None;
                w.term_sent <- None;
                Completed { id; reply = line } :: events
              end)
        events (take_lines w)

let enforce_deadlines t events =
  let t_now = now () in
  Array.fold_left
    (fun events w ->
      match w.job, w.term_sent with
      | Some (_, deadline), None when t_now >= deadline ->
          (* First strike: SIGTERM, give it [grace] to die cleanly. *)
          (try Unix.kill w.pid Sys.sigterm with Unix.Unix_error _ -> ());
          w.term_sent <- Some t_now;
          events
      | Some _, Some at when t_now >= at +. t.cfg.grace ->
          (* Still alive after the grace period (e.g. a [wedge:N] worker
             blocking SIGTERM): SIGKILL cannot be blocked. Outliving the
             grace is what distinguishes a wedge from a plain timeout —
             the quarantine policy in {!Runner} treats them differently. *)
          w.wedged <- true;
          (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
          (match reap t w with Some e -> e :: events | None -> events)
      | _ -> events)
    events t.pool

let next_wakeup t ~timeout =
  let t_now = now () in
  Array.fold_left
    (fun acc w ->
      match w.job, w.term_sent with
      | Some (_, deadline), None when deadline < infinity ->
          Float.min acc (Float.max 0.0 (deadline -. t_now))
      | Some _, Some at -> Float.min acc (Float.max 0.0 (at +. t.cfg.grace -. t_now))
      | _ -> acc)
    timeout t.pool

let poll ?(extra = []) ?(extra_write = []) ?(timeout = 1.0) t =
  let events = enforce_deadlines t [] in
  if events <> [] then List.rev events
  else begin
    let fds = extra @ Array.to_list (Array.map (fun w -> w.of_worker) t.pool) in
    let wait =
      let w = next_wakeup t ~timeout in
      if Float.is_finite w then w else -1.0 (* select: negative = block *)
    in
    let readable, writable, _ =
      try restart_eintr (fun () -> Unix.select fds extra_write [] wait)
      with Unix.Unix_error (Unix.EBADF, _, _) -> (fds, extra_write, [])
    in
    let events =
      List.fold_left
        (fun events fd ->
          if List.memq fd extra then Input fd :: events
          else
            match Array.find_opt (fun w -> w.of_worker = fd) t.pool with
            | Some w -> handle_readable t w events
            | None -> events)
        [] readable
    in
    let events = List.fold_left (fun events fd -> Writable fd :: events) events writable in
    let events = enforce_deadlines t events in
    List.rev events
  end

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Array.iter
      (fun w ->
        (try Unix.close w.to_worker with Unix.Unix_error _ -> ());
        try Unix.close w.of_worker with Unix.Unix_error _ -> ())
      t.pool;
    (* Closing the job pipe makes a healthy worker's input_line hit
       End_of_file and _exit 0; a wedged one needs the hammer. *)
    Array.iter
      (fun w ->
        match restart_eintr (fun () -> Unix.waitpid [ Unix.WNOHANG ] w.pid) with
        | 0, _ ->
            (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (restart_eintr (fun () -> Unix.waitpid [] w.pid))
        | _ -> ()
        | exception Unix.Unix_error _ -> ())
      t.pool
  end
