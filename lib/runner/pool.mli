(** Fork-isolated worker pool.

    The mechanism half of the supervised execution layer: it forks
    workers, frames line-delimited messages over per-worker pipe pairs,
    detects and classifies worker deaths, enforces per-job wall-clock
    deadlines (SIGTERM, then SIGKILL after a grace period — the SIGKILL
    path catches workers that block SIGTERM, as [wedge:N] ones do), and
    respawns a replacement for every dead worker. Policy — retries,
    budget degradation, queueing, journaling — lives in {!Runner}.

    Workers run [handler] on each job line and reply with one line. The
    pool never interprets either payload. One job is in flight per worker
    at most; {!assign} requires an idle worker (check {!idle_count}). *)

type death =
  | Exited of int  (** exited with this nonzero code *)
  | Signaled of int  (** killed by this signal *)
  | Timed_out
      (** overran the job deadline and died from the pool's SIGTERM
          within the grace period *)
  | Wedged
      (** overran the job deadline AND survived SIGTERM through the whole
          grace period (blocked or ignored it), so the pool SIGKILLed it.
          Reported separately from [Timed_out] because a worker that has
          to be hard-killed is evidence of a hostile job: {!Runner}'s
          poison quarantine counts wedges as worker deaths but plain
          timeouts as the job's own fault. *)
  | Malformed of string
      (** never produced by the pool itself: {!Runner} uses it when a
          worker's reply line does not parse *)

val death_to_string : death -> string

type config = {
  workers : int;  (** pool size, ≥ 1 *)
  job_timeout : float option;  (** per-job wall-clock seconds *)
  grace : float;  (** SIGTERM-to-SIGKILL escalation delay, seconds *)
}

type t

type event =
  | Completed of { id : string; reply : string }  (** reply line, unparsed *)
  | Crashed of { id : string; death : death }
  | Trace of { id : string; pid : int; line : string }
      (** a trace event streamed from the worker's pipe sink
          ([Obs.Trace.adopt_pipe]) while [id] was in flight, its
          [Obs.Trace.pipe_prefix] marker stripped; the supervisor
          stitches it into its own sink. Does not settle the job. *)
  | Input of Unix.file_descr  (** an [~extra] fd of {!poll} is readable *)
  | Writable of Unix.file_descr  (** an [~extra_write] fd of {!poll} is writable *)

val create : config -> handler:(string -> string) -> t
(** Forks [workers] children, each looping [handler] over incoming job
    lines. Installs [Signal_ignore] for SIGPIPE in the calling process (a
    worker dying mid-write must not kill the supervisor). The handler runs
    in the child and must not assume any parent state mutated after
    [create]. *)

val idle_count : t -> int

val assign : t -> id:string -> ?timeout:float -> payload:string -> unit -> unit
(** Sends the job to some idle worker and starts its deadline clock: the
    effective wall deadline is the tighter of the pool-wide [job_timeout]
    and [?timeout] (seconds; e.g. the remainder of a client's end-to-end
    deadline). Raises [Invalid_argument] if no worker is idle — the
    caller owns the queue and must not overcommit. A crash racing the
    send is fine: the death surfaces through {!poll} and the job is
    reported [Crashed]. *)

val abort : t -> id:string -> bool
(** Deliberately discards the in-flight attempt running [id]: SIGKILLs
    its worker, reaps and respawns it, and suppresses the [Crashed] event
    (the caller chose the death — it is not a failure of the job). Reply
    bytes already buffered from the doomed attempt are dropped. Returns
    [false] if no worker is running [id] (it may have just completed).
    Used for hedge losers and for cancelling a disconnected client's
    hedged attempts. *)

val poll :
  ?extra:Unix.file_descr list ->
  ?extra_write:Unix.file_descr list ->
  ?timeout:float ->
  t ->
  event list
(** Waits (at most [timeout] seconds, default 1.0, sooner if a job
    deadline is nearer) for worker replies, worker deaths, readability of
    an [extra] fd, or writability of an [extra_write] fd (used by the
    serve loop to flush backpressured client output), and returns the
    events observed — possibly none. Dead workers have already been
    replaced by the time their [Crashed] event is returned. *)

val shutdown : t -> unit
(** Closes all pipes, SIGKILLs stragglers, reaps every child. Idempotent.
    Jobs still in flight are abandoned without an event. *)
