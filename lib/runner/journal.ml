open Proto

type entry =
  | Started of { id : string; digest : string }
  | Done of { id : string; digest : string; reply : reply }

(* The digest covers the job as originally submitted (including its full
   budget, before any retry degradation), so a resumed run only reuses a
   recorded answer when the job text is byte-identical. *)
let job_digest j = Digest.to_hex (Digest.string (job_to_json j))

let entry_to_json = function
  | Started { id; digest } ->
      Json.to_string
        (Json.Obj [ ("event", Json.Str "start"); ("id", Json.Str id); ("job", Json.Str digest) ])
  | Done { id; digest; reply } ->
      Json.to_string
        (Json.Obj
           [
             ("event", Json.Str "done");
             ("id", Json.Str id);
             ("job", Json.Str digest);
             ("reply", reply_to_obj reply);
           ])

let entry_of_json line =
  let ( let* ) = Result.bind in
  let* v = Json.parse line in
  let str what =
    match Option.bind (Json.member what v) Json.to_str_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" what)
  in
  let* event = str "event" in
  let* id = str "id" in
  let* digest = str "job" in
  match event with
  | "start" -> Ok (Started { id; digest })
  | "done" -> begin
      match Json.member "reply" v with
      | None -> Error "done entry without a reply"
      | Some r ->
          let* reply = reply_of_obj r in
          Ok (Done { id; digest; reply })
    end
  | other -> Error (Printf.sprintf "unknown journal event %S" other)

let append_s = Obs.Metrics.histogram "runner.journal_append_s"

type t = { path : string; mutable oc : out_channel option }

let open_append path = { path; oc = None }

let append t entry =
  let t0 = Obs.Clock.now () in
  let oc =
    match t.oc with
    | Some oc -> oc
    | None ->
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 t.path in
        t.oc <- Some oc;
        oc
  in
  output_string oc (entry_to_json entry);
  output_char oc '\n';
  (* One job may be the supervisor's last act before a crash: flush per
     line so the write-ahead property actually holds. *)
  flush oc;
  Obs.Metrics.observe append_s (Obs.Clock.now () -. t0)

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
      t.oc <- None;
      close_out oc

let load path =
  match open_in path with
  | exception Sys_error _ -> Ok []
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let entries = ref [] in
          let lineno = ref 0 in
          let err = ref None in
          (try
             while true do
               let line = input_line ic in
               incr lineno;
               let at_eof = pos_in ic >= in_channel_length ic in
               if String.trim line = "" then ()
               else
                 match entry_of_json line with
                 | Ok e -> entries := e :: !entries
                 | Error msg ->
                     (* A torn final line is the expected crash artifact —
                        recovery must tolerate it. A malformed line in the
                        middle means the file is not our journal: refuse to
                        resume rather than silently skip results. *)
                     if at_eof then raise Exit
                     else begin
                       err := Some (Printf.sprintf "%s:%d: %s" path !lineno msg);
                       raise Exit
                     end
             done
           with End_of_file | Exit -> ());
          match !err with Some msg -> Error msg | None -> Ok (List.rev !entries))

let completed entries =
  let tbl = Hashtbl.create 64 in
  List.iter
    (function
      | Started _ -> ()
      | Done { id; digest; reply } ->
          (* Last entry wins: a re-run job (e.g. after a failed
             re-verification) supersedes its earlier answer. *)
          Hashtbl.replace tbl id (digest, reply))
    entries;
  tbl
