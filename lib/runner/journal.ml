open Proto

type entry =
  | Started of { id : string; digest : string }
  | Done of { id : string; digest : string; reply : reply }

(* The digest covers the job as originally submitted (including its full
   budget, before any retry degradation), so a resumed run only reuses a
   recorded answer when the job text is byte-identical. *)
let job_digest j = Digest.to_hex (Digest.string (job_to_json j))

(* Digest of the job with its id blanked: two clients submitting the same
   work under different ids canonicalize to the same key. The serve loop
   journals and caches under this digest; batch journals keep [job_digest]
   so resume stays strictly per-submission. *)
let canonical_digest j = job_digest { j with id = "" }

let entry_to_json = function
  | Started { id; digest } ->
      Json.to_string
        (Json.Obj [ ("event", Json.Str "start"); ("id", Json.Str id); ("job", Json.Str digest) ])
  | Done { id; digest; reply } ->
      Json.to_string
        (Json.Obj
           [
             ("event", Json.Str "done");
             ("id", Json.Str id);
             ("job", Json.Str digest);
             ("reply", reply_to_obj reply);
           ])

let entry_of_json line =
  let ( let* ) = Result.bind in
  let* v = Json.parse line in
  let str what =
    match Option.bind (Json.member what v) Json.to_str_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" what)
  in
  let* event = str "event" in
  let* id = str "id" in
  let* digest = str "job" in
  match event with
  | "start" -> Ok (Started { id; digest })
  | "done" -> begin
      match Json.member "reply" v with
      | None -> Error "done entry without a reply"
      | Some r ->
          let* reply = reply_of_obj r in
          Ok (Done { id; digest; reply })
    end
  | other -> Error (Printf.sprintf "unknown journal event %S" other)

let append_s = Obs.Metrics.histogram "runner.journal_append_s"
let fsync_s = Obs.Metrics.histogram "journal.fsync_s"
let compact_s = Obs.Metrics.histogram "journal.compact_s"

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum  *)
(* every v2 record carries. Table-driven; OCaml's 63-bit ints hold the  *)
(* 32-bit state without masking gymnastics.                             *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun i ->
         let c = ref i in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* v2 on-disk format.                                                  *)
(*                                                                     *)
(*   rpq-journal-v2\n                                                  *)
(*   <len>:<crc32 hex8>:<seq>:<payload>\n      (one per record)        *)
(*                                                                     *)
(* [len] is the payload's byte length (self-delimiting framing — the    *)
(* payload is opaque), [crc] covers "<seq>:<payload>" so a corrupted    *)
(* sequence number cannot masquerade as valid, [seq] is strictly        *)
(* increasing from 1. A v1 journal (bare JSON lines from PR 3) is       *)
(* detected by the missing header and loaded read-only.                 *)
(* ------------------------------------------------------------------ *)

let header = "rpq-journal-v2"
let header_line = header ^ "\n"

let frame ~seq payload =
  let body = Printf.sprintf "%d:%s" seq payload in
  Printf.sprintf "%d:%08x:%s\n" (String.length payload) (crc32 body) body

type version = V1 | V2

type torn = Truncated | Bad_checksum

type report = {
  entries : entry list;
  version : version;
  records : int;
  bytes : int;
  dead_bytes : int;
  torn_bytes : int;
  torn : torn option;
  last_seq : int;
}

let empty_report =
  {
    entries = [];
    version = V2;
    records = 0;
    bytes = 0;
    dead_bytes = 0;
    torn_bytes = 0;
    torn = None;
    last_seq = 0;
  }

(* Dead bytes = everything a compaction would drop: [Started] records and
   every [Done] superseded by a later one for the same id (plus any torn
   tail, counted by the caller). *)
let dead_of sized =
  let last_done = Hashtbl.create 32 in
  List.iteri
    (fun i (e, _) -> match e with Done { id; _ } -> Hashtbl.replace last_done id i | Started _ -> ())
    sized;
  let dead = ref 0 in
  List.iteri
    (fun i (e, size) ->
      let live =
        match e with
        | Done { id; _ } -> Hashtbl.find_opt last_done id = Some i
        | Started _ -> false
      in
      if not live then dead := !dead + size)
    sized;
  !dead

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f')

(* Parse errors that must refuse a resume (mid-file corruption) carry a
   file:line position; line 1 is the header, record [k] is line [k+1]. *)
exception Refuse of int * string

(* Scan one v2 record starting at byte [o]. Returns [Ok (entry, size, seq)]
   or [Error torn_reason] — and a torn result, by construction, always
   consumes through end-of-file: every [Error] branch below fires only
   when the record's frame runs past [n]. Structural damage that is not a
   clean truncation raises {!Refuse}. *)
let scan_record s ~lineno ~prev_seq o =
  let n = String.length s in
  let refuse fmt = Printf.ksprintf (fun msg -> raise (Refuse (lineno, msg))) fmt in
  let scan_int what j0 =
    let j = ref j0 in
    while !j < n && is_digit s.[!j] do
      incr j
    done;
    if !j >= n then Error Truncated
    else if !j = j0 then refuse "malformed record: expected %s digits at byte %d" what j0
    else if s.[!j] <> ':' then refuse "malformed record: expected ':' after %s" what
    else if !j - j0 > 12 then refuse "absurd %s field (%d digits)" what (!j - j0)
    else Ok (int_of_string (String.sub s j0 (!j - j0)), !j + 1)
  in
  match scan_int "length" o with
  | Error t -> Error t
  | Ok (len, j) -> begin
      (* 8 lowercase hex digits, then ':'. *)
      if n - j < 9 then begin
        (* Fewer bytes than the field needs: torn iff what remains is a
           clean prefix of it (all hex — a partial write cut mid-field). *)
        let k = ref j in
        while !k < n && is_hex s.[!k] do
          incr k
        done;
        if !k = n then Error Truncated
        else refuse "malformed record: bad checksum field"
      end
      else begin
        let hex = String.sub s j 8 in
        if not (String.for_all is_hex hex) || s.[j + 8] <> ':' then
          refuse "malformed record: bad checksum field";
        let crc = int_of_string ("0x" ^ hex) in
        match scan_int "sequence" (j + 9) with
        | Error t -> Error t
        | Ok (seq, p) ->
            if n - p < len + 1 then Error Truncated
            else if s.[p + len] <> '\n' then
              refuse "malformed record: payload is not %d bytes (frame length lies)" len
            else begin
              let body = String.sub s (j + 9) (p + len - (j + 9)) in
              if crc32 body <> crc then begin
                if p + len + 1 = n then Error Bad_checksum
                else refuse "checksum mismatch (record seq %d)" seq
              end
              else if seq <= prev_seq then
                refuse "sequence regressed (%d after %d): not an append-only journal" seq
                  prev_seq
              else begin
                match entry_of_json (String.sub s p len) with
                | Error msg -> refuse "checksummed record with a bad payload: %s" msg
                | Ok e -> Ok (e, p + len + 1 - o, seq)
              end
            end
      end
    end

let parse_v2 path s =
  let n = String.length s in
  let hlen = String.length header_line in
  try
    let sized = ref [] in
    let o = ref hlen in
    let lineno = ref 2 in
    let last_seq = ref 0 in
    let torn = ref None in
    while !o < n && !torn = None do
      match scan_record s ~lineno:!lineno ~prev_seq:!last_seq !o with
      | Ok (e, size, seq) ->
          sized := (e, size) :: !sized;
          last_seq := seq;
          o := !o + size;
          incr lineno
      | Error reason -> torn := Some reason
    done;
    let sized = List.rev !sized in
    let torn_bytes = n - !o in
    Ok
      {
        entries = List.map fst sized;
        version = V2;
        records = List.length sized;
        bytes = n;
        dead_bytes = dead_of sized + torn_bytes;
        torn_bytes;
        torn = (if torn_bytes = 0 then None else !torn);
        last_seq = !last_seq;
      }
  with Refuse (lineno, msg) -> Error (Printf.sprintf "%s:%d: %s" path lineno msg)

(* v1 journals: bare JSON lines, no checksums. Byte-precise torn rule
   (this is the fixed semantics — the old reader's
   [pos_in ic >= in_channel_length ic] heuristic tolerated a malformed
   *complete* final line): torn means exactly "the file does not end in a
   newline", and the newline-less tail is the discarded crash artifact.
   Any malformed *newline-terminated* line refuses the resume. *)
let parse_v1 path s =
  let ( let* ) = Result.bind in
  let n = String.length s in
  let rec go o lineno acc =
    if o >= n then Ok (List.rev acc, 0)
    else
      match String.index_from_opt s o '\n' with
      | None -> Ok (List.rev acc, n - o)
      | Some i ->
          let line = String.sub s o (i - o) in
          if String.trim line = "" then go (i + 1) (lineno + 1) acc
          else begin
            match entry_of_json line with
            | Ok e -> go (i + 1) (lineno + 1) ((e, i - o + 1) :: acc)
            | Error msg -> Error (Printf.sprintf "%s:%d: %s" path lineno msg)
          end
  in
  let* sized, torn_bytes = go 0 1 [] in
  Ok
    {
      entries = List.map fst sized;
      version = V1;
      records = List.length sized;
      bytes = n;
      dead_bytes = dead_of sized + torn_bytes;
      torn_bytes;
      torn = (if torn_bytes = 0 then None else Some Truncated);
      last_seq = 0;
    }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path =
  match read_file path with
  | exception Sys_error _ -> Ok empty_report
  | s ->
      let n = String.length s in
      let hlen = String.length header_line in
      if n >= hlen && String.sub s 0 hlen = header_line then parse_v2 path s
      else if n < hlen && s = String.sub header_line 0 n then
        (* A crash during journal creation tore the header itself: an
           empty v2 journal with the header prefix as the torn tail. *)
        Ok
          {
            empty_report with
            bytes = n;
            dead_bytes = n;
            torn_bytes = n;
            torn = (if n = 0 then None else Some Truncated);
          }
      else parse_v1 path s

let completed entries =
  let tbl = Hashtbl.create 64 in
  List.iter
    (function
      | Started _ -> ()
      | Done { id; digest; reply } ->
          (* Last entry wins: a re-run job (e.g. after a failed
             re-verification) supersedes its earlier answer. *)
          Hashtbl.replace tbl id (digest, reply))
    entries;
  tbl

(* ------------------------------------------------------------------ *)
(* Atomic rewrite: temp + fsync + rename. Shared by explicit            *)
(* compaction, the auto-compaction in open_append, and v1 migration.    *)
(* ------------------------------------------------------------------ *)

let fsync_dir dir =
  (* Makes the rename itself durable. Some filesystems refuse fsync on a
     directory fd — then the rename is only as durable as the mount, and
     there is nothing further we can do; don't fail the rewrite over it. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let rewrite_atomic path entries =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let oc = Unix.out_channel_of_descr fd in
  output_string oc header_line;
  List.iteri (fun i e -> output_string oc (frame ~seq:(i + 1) (entry_to_json e))) entries;
  flush oc;
  Unix.fsync fd;
  close_out oc;
  (* The temp file is complete and durable; the original is untouched. A
     crash here (the [journal.mid_compact] site simulates one) loses
     nothing: recovery sees the original journal, plus a stale .tmp that
     the next rewrite truncates. *)
  Resilience.Faults.crash_site "journal.mid_compact";
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path)

(* Compaction keeps, for every job id, only its last [Done] record (in
   first-settlement order); [Started] records are purely informational
   and are dropped — an unsettled job is simply re-dispatched on resume. *)
let compact_entries entries =
  let last_done = Hashtbl.create 32 in
  List.iteri
    (fun i e -> match e with Done { id; _ } -> Hashtbl.replace last_done id i | Started _ -> ())
    entries;
  List.filteri
    (fun i e -> match e with Done { id; _ } -> Hashtbl.find_opt last_done id = Some i | Started _ -> false)
    entries

type compact_stats = { kept : int; dropped : int; before_bytes : int; after_bytes : int }

(* ------------------------------------------------------------------ *)
(* Exclusive open for appending.                                        *)
(* ------------------------------------------------------------------ *)

type sync = Never | Per_line | Per_job

type t = {
  fd : Unix.file_descr;
  oc : out_channel;
  sync : sync;
  key : int * int;  (** (st_dev, st_ino) in the in-process lock registry *)
  mutable seq : int;
}

(* [Unix.lockf] record locks are per-process: a second open of the same
   journal from the *same* process would silently succeed, which is
   exactly the two-supervisors-one-journal bug the lock exists to catch
   (e.g. a batch resumed while a serve loop still holds the file). Keep a
   process-local registry keyed by inode alongside the kernel lock. *)
let locked : (int * int, unit) Hashtbl.t = Hashtbl.create 8

let lock_failure path reason =
  Error (Printf.sprintf "%s: journal is already locked by another supervisor (%s)" path reason)

let acquire path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let st = Unix.fstat fd in
  let key = (st.Unix.st_dev, st.Unix.st_ino) in
  if Hashtbl.mem locked key then begin
    Unix.close fd;
    lock_failure path "this process"
  end
  else begin
    match Unix.lockf fd Unix.F_TLOCK 0 with
    | () ->
        Hashtbl.replace locked key ();
        Ok (fd, key)
    | exception Unix.Unix_error ((Unix.EACCES | Unix.EAGAIN), _, _) ->
        Unix.close fd;
        lock_failure path "flock held"
    | exception e ->
        Unix.close fd;
        raise e
  end

let release fd key =
  Hashtbl.remove locked key;
  (* Closing the descriptor drops the lockf lock. *)
  try Unix.close fd with Unix.Unix_error _ -> ()

let default_compact_ratio = 0.5

let open_append ?(sync = Per_job) ?(compact_ratio = default_compact_ratio) path =
  let ( let* ) = Result.bind in
  let* fd, key = acquire path in
  match load path with
  | Error e ->
      release fd key;
      Error e
  | Ok rep ->
      let auto_compact =
        rep.records > 0
        && rep.bytes > 0
        && float_of_int rep.dead_bytes /. float_of_int rep.bytes >= compact_ratio
      in
      let* fd, key, rep =
        if rep.version = V1 || auto_compact then begin
          (* Rewrite in place (v1 migration keeps every entry; dead-ratio
             compaction keeps only live ones), then re-acquire: the rename
             replaced the inode our lock lives on. *)
          let kept = if auto_compact then compact_entries rep.entries else rep.entries in
          match rewrite_atomic path kept with
          | () ->
              release fd key;
              let* fd, key = acquire path in
              let* rep =
                match load path with
                | Ok rep -> Ok rep
                | Error e ->
                    release fd key;
                    Error e
              in
              Ok (fd, key, rep)
          | exception e ->
              release fd key;
              raise e
        end
        else Ok (fd, key, rep)
      in
      (* Truncate the torn tail so this run's appends extend the good
         prefix instead of gluing new records onto half a record — the
         crash artifact that used to make a resumed-then-resumed journal
         unreadable. *)
      if rep.torn_bytes > 0 then Unix.ftruncate fd (rep.bytes - rep.torn_bytes);
      ignore (Unix.lseek fd 0 Unix.SEEK_END);
      let oc = Unix.out_channel_of_descr fd in
      if rep.bytes - rep.torn_bytes = 0 then output_string oc header_line;
      Ok { fd; oc; sync; key; seq = rep.last_seq }

(* The single sync point every append funnels through: flush always (the
   write-ahead property needs the line out of the userland buffer), fsync
   per policy. This is the one seam the [sync] knob controls. *)
let sync_point t ~settled =
  flush t.oc;
  let want_fsync =
    match t.sync with Never -> false | Per_line -> true | Per_job -> settled
  in
  if want_fsync then begin
    Resilience.Faults.crash_site "journal.pre_fsync";
    let t0 = Obs.Clock.now () in
    Unix.fsync t.fd;
    Obs.Metrics.observe fsync_s (Obs.Clock.now () -. t0)
  end

let append t entry =
  let t0 = Obs.Clock.now () in
  Resilience.Faults.crash_site "journal.pre_append";
  let seq = t.seq + 1 in
  output_string t.oc (frame ~seq (entry_to_json entry));
  t.seq <- seq;
  sync_point t ~settled:(match entry with Done _ -> true | Started _ -> false);
  Resilience.Faults.crash_site "journal.post_append";
  Obs.Metrics.observe append_s (Obs.Clock.now () -. t0)

let close t =
  flush t.oc;
  Hashtbl.remove locked t.key;
  (* close_out closes the underlying descriptor, dropping the lock. *)
  close_out t.oc

let compact path =
  let t0 = Obs.Clock.now () in
  let ( let* ) = Result.bind in
  let* fd, key = acquire path in
  Fun.protect
    ~finally:(fun () -> release fd key)
    (fun () ->
      let* rep = load path in
      let kept = compact_entries rep.entries in
      rewrite_atomic path kept;
      let after_bytes = (Unix.stat path).Unix.st_size in
      Obs.Metrics.observe compact_s (Obs.Clock.now () -. t0);
      Ok
        {
          kept = List.length kept;
          dropped = rep.records - List.length kept;
          before_bytes = rep.bytes;
          after_bytes;
        })
