(** Supervised execution layer.

    Resilience jobs on the NP-hard side of the dichotomy run exponential
    searches; under fault injection (or plain bad luck) a worker can
    crash, hang, or babble. This module keeps a bounded pool of
    fork-isolated worker processes ({!Pool}) and layers policy on top:

    {ul
    {- {b retries with budget degradation}: a job whose worker died is
       retried up to [retries] times with exponential backoff, each time
       with its budget divided by [degrade] — so a persistently crashing
       exact solve is squeezed until budget exhaustion preempts the crash
       and the job settles as a certified [bounded] answer (see the probe
       ordering contract of {!Resilience.Budget.create});}
    {- {b structured failure}: a job that still cannot settle returns an
       error {e reply} ([kind] one of [crash], [timeout], [malformed],
       [bad-job], [overloaded], [internal]) — the supervisor itself never
       raises on worker misbehavior;}
    {- {b crash recovery}: {!run_batch} write-ahead journals every
       dispatch and settlement ({!Journal}), so an interrupted batch
       rerun with the same journal recomputes only unsettled jobs —
       recorded answers are re-verified first unless [RPQ_CHECK=off];}
    {- {b admission control}: {!serve} sheds load with a retriable
       [overloaded] reply once [queue_cap] jobs are pending.}}

    Fault modes [kill:N] and [wedge:N] of {!Resilience.Faults} target
    this layer: workers consult {!Resilience.Faults.worker_mode} per job
    and either self-SIGKILL or wedge (stop responding with SIGTERM
    blocked) at the given budget tick. *)

module Proto = Proto
module Pool = Pool
module Journal = Journal
module Transport = Transport
module Cache = Cache
module Trace_check = Trace_check

val now_s : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]) — exposed so bench/CLI code
    outside this subtree needs no [Unix] dependency of its own. *)

val run_job_locally : Proto.job -> Proto.reply
(** Runs one job in the calling process: parse the database and query,
    apply the job's fault plan (or inherit the ambient one), build the
    budget — wiring {!Resilience.Faults.worker_mode} into the budget
    probe — and solve. Never raises on bad input (returns a [bad-job]
    reply); under a [kill]/[wedge] plan with a live probe it may, by
    design, kill or wedge the calling process. The whole job runs under
    an [Obs.Trace] span with per-stage accounting; the stage totals fill
    the reply's [stages] block (that is how worker-side timings cross the
    fork back to the supervisor). [attempts] and [wall_s] in the reply
    are placeholders for the supervisor to overwrite. *)

val worker_handler : string -> string
(** [run_job_locally] lifted to wire form: the pool workers' job-line to
    reply-line function. Total — an unparseable job line yields a
    [bad-job] reply line. *)

type config = {
  workers : int;
  retries : int;  (** extra attempts after the first; 0 = fail fast *)
  degrade : int;  (** budget divisor per retry (≥ 2 effective) *)
  queue_cap : int;  (** admission limit for {!serve} *)
  job_timeout : float option;  (** per-job wall-clock seconds *)
  grace : float;  (** SIGTERM-to-SIGKILL delay for timed-out workers *)
  backoff : float;  (** base retry delay in seconds, doubled per attempt *)
  journal_sync : Journal.sync;
      (** fsync policy for {!run_batch}'s journal (see {!Journal.sync}) *)
  max_heap_mb : int option;
      (** worker memory ceiling: a [Gc] alarm watches the major heap and
          the budget probe converts an overrun into
          [Budget.Exhausted Memory], so an OOM-bound job settles as a
          certified [Bounded] reply instead of dying to the OOM killer *)
  hedge_after : float option;
      (** certificate-gated hedged execution: when an attempt has been
          running this many seconds, a worker is idle, and no job is
          waiting to dispatch, launch a speculative duplicate of it (same
          payload, same budget). The first reply whose certificate
          re-checks ({!Cert.Checker.check_reply}) settles the job and the
          loser is killed (its open worker spans close tagged
          ["hedged_loser"], no crash event, no retry consumed); a racing
          reply whose certificate fails is kept only as a fallback.
          Exactly one reply is emitted and journaled either way, and
          [attempts] counts primary dispatches only — under a
          deterministic fault plan a hedged run settles identically to an
          unhedged one modulo wall clock. [None] (the default) disables
          hedging. *)
  poison_k : int;
      (** poison-job quarantine: a job whose primary attempts have killed
          this many workers — crashes and wedges count, plain timeouts
          and malformed replies do not — is settled as a non-retriable
          error reply with kind ["poison"] instead of spending its
          remaining retries on more respawns. Counted in the
          [rpq_runner_poisoned_total] Prometheus family, with a
          flight-recorder breadcrumb. 0 disables quarantine. *)
}

val default_config : config
(** 4 workers, 2 retries, degrade 8, queue cap 64, no timeout, 0.5s
    grace, 50ms base backoff, per-job journal fsync, no heap ceiling,
    hedging off, quarantine after 3 worker deaths. *)

val set_max_heap_mb : int option -> unit
(** Sets the process-wide heap ceiling consulted by {!run_job_locally}.
    Engine construction calls this from [config.max_heap_mb] before the
    pool forks (so workers inherit it); expose it separately for the
    fork-free paths ([rpq solve --json]). *)

val degrade_budget : degrade:int -> Proto.budget_spec -> Proto.budget_spec
(** The per-retry budget squeeze: deadline and steps divided by
    [degrade] (floors of 0.01s / 1 step); a job with {e no} step budget
    gets a default finite one on its first retry, so even an
    unconstrained crashing job converges to a budget small enough for
    exhaustion to win. Exposed for the monotonicity tests. *)

val verify_reply : Proto.reply -> bool
(** Validity check of a recorded answer, used on journal resume, by the
    result cache, and as the hedge gate: the reply's certificate must
    re-check ({!Cert.Checker.check_reply}). This needs no access to the
    job — the certificate carries its own evidence — and rejects both
    forged witnesses (a [Cut]/[Bounds] certificate pins the witness) and
    settled answers whose optimality argument fails, without re-running
    any solver. *)

type batch_stats = {
  ran : int;  (** jobs actually executed this run *)
  resumed : int;  (** jobs skipped because the journal had their answer *)
  failures : int;  (** replies whose verdict is an error *)
}

val run_batch :
  ?journal:string -> config -> Proto.job list -> Proto.reply list * batch_stats
(** Runs the jobs to completion and returns one reply per job, {e in
    input order} (so output is deterministic regardless of worker count
    and scheduling). Job ids must be unique — raises [Invalid_argument]
    otherwise, as with an unreadable journal. With [?journal], settled
    jobs found there (matching id {e and} digest, and passing
    {!verify_reply} when [RPQ_CHECK] is not [off]) are reused, and this
    run's dispatches and settlements are appended for the next resume. *)

(** Scheduling policy of the multi-client server, exposed so its
    properties (weighted-fair class cycle, round-robin order, the
    per-client inflight cap) are testable deterministically, without
    sockets or worker processes. Client keys are transport client ids;
    priority classes are {!Proto.priority_class} values (batch 0,
    normal 1, interactive 2). *)
module Admission : sig
  type 'a t

  val create : client_inflight:int -> 'a t
  (** Raises [Invalid_argument] when [client_inflight < 1]. *)

  val enqueue : ?prio:int -> 'a t -> int -> 'a -> unit
  (** Appends to the client's FIFO of class [prio] (default 1, clamped
      into range); a (class, client) pair seen for the first time joins
      the back of that class's round-robin rotation. *)

  val next : 'a t -> (int * 'a) option
  (** Weighted-fair dequeue. Classes take turns along the fixed cycle
      interactive, normal, interactive, batch, interactive, normal,
      interactive (weights 4:2:1); when the scheduled class has no
      eligible work the highest non-empty class goes instead, so a
      worker never idles on ceremony. Within a class: pops from the
      first client in rotation that has queued work and fewer than
      [client_inflight] jobs outstanding (the cap is global across
      classes); that client moves to the back of the rotation, and a
      client skipped for lack of headroom keeps its place in line.
      [None] when no client is eligible. *)

  val steal_lowest : 'a t -> below:int -> (int * 'a) option
  (** Evicts and returns the oldest queued item of the lowest non-empty
      class strictly below [below] — priority-aware shedding at the
      admission cap. [None] when every queued item is of class ≥
      [below]. *)

  val settled : 'a t -> int -> unit
  (** One of the client's outstanding jobs finished; frees headroom. *)

  val cancel : 'a t -> int -> 'a list
  (** Drops the client from every class rotation and returns its queued
      (never its outstanding) items, FIFO within each class, lowest
      class first. *)

  val queued : 'a t -> int
  val queued_for : 'a t -> int -> int
  val inflight : 'a t -> int
  val inflight_for : 'a t -> int -> int
end

type serve_config = {
  base : config;
  listen : string option;  (** Unix-domain socket path to listen on *)
  tcp : int option;  (** loopback TCP port to listen on (0 = ephemeral) *)
  cache_entries : int;  (** result-cache capacity; 0 disables *)
  client_inflight : int;  (** per-client outstanding-job cap *)
  drain_grace : float;  (** seconds to let inflight jobs settle on drain *)
  write_timeout : float;  (** stalled-write client eviction timeout *)
  serve_journal : string option;
      (** append settlements here and seed the cache from it on start *)
  brownout_after : float option;
      (** load watchdog: when the admission queue has stayed at or above
          half of [queue_cap] for this many seconds continuously, the
          server enters brownout — new [batch] jobs are shed on arrival
          with a retriable [overloaded] reply, and non-interactive jobs
          have their step budgets degraded once (same squeeze as a
          retry) when dispatched — until the queue drains below the
          threshold. Transitions are reason-coded in traces, logs and
          the [serve.brownout] gauge. [None] (the default) disables the
          watchdog. *)
}

val default_serve_config : serve_config
(** [default_config] engine, no listeners, 256 cache entries, 8 jobs
    per client inflight, 5s drain grace, 30s write timeout, no journal,
    no brownout watchdog. *)

val serve_sockets :
  ?stdio:in_channel * out_channel ->
  ?preconnected:Unix.file_descr list ->
  ?preconnected_abrupt:Unix.file_descr list ->
  serve_config ->
  unit
(** The multi-client server. Listens per [listen]/[tcp] (either, both,
    or neither) and optionally serves a pre-connected [?stdio] pair;
    [?preconnected] fds (e.g. {!Transport.pair} ends) are registered as
    additional clients with the stdio EOF semantics — a half-close
    drains queued jobs instead of cancelling them —
    while [?preconnected_abrupt] fds get the socket-client semantics
    (EOF is a disconnect: queued jobs dropped, inflight and hedged
    attempts aborted — exposed this way so the disconnect path is
    testable without a real socket);
    runs until there is no listener, no client and no work left, or
    until SIGTERM/SIGINT triggers a graceful drain (stop accepting,
    shed queued jobs with retriable [overloaded] replies, wait up to
    [drain_grace] for inflight jobs, flush, release the journal lock,
    final trace flush).

    Per client: line-framed jobs in, replies out in settlement order;
    admission is weighted-fair across priority classes and round-robin
    across clients within a class (see {!Admission}), with at most
    [client_inflight] outstanding per client; a malformed line draws a
    [bad-job] reply and closes that client (framing after garbage is
    untrustworthy) without touching any other client; a disconnect
    cancels that client's {e queued} jobs and aborts its inflight jobs
    that are mid-hedge — an unhedged inflight job settles, is journaled
    and cached. A job carrying [deadline_ms] that expires while queued
    is shed with a retriable [deadline_exceeded] reply; one that
    dispatches has its wall deadline and solver budget clamped to the
    remaining client budget. Global [queue_cap] overflow first tries to
    evict the oldest queued job of a strictly lower priority class
    (shed with a retriable [overloaded] reply) before shedding the
    arrival itself.

    Results: every settled non-error reply is cached under the job's
    canonical digest ({!Journal.canonical_digest}); an identical
    resubmission — same client or not — is answered from the cache
    {e only after} its certificate re-checks ({!Cert.Checker}); a hit
    whose certificate fails is evicted and recomputed. With
    [serve_journal], settlements are journaled under the client's
    original job ids and the cache is pre-seeded from the journal on
    start (each entry certificate-gated on use, so a tampered journal
    entry can be seeded but never served). *)

val serve : config -> in_channel -> out_channel -> unit
(** Line-oriented job server: one {!Proto.job} JSON line in, one
    {!Proto.reply} JSON line out (flushed per reply), replies in
    settlement order, until EOF on input and all accepted jobs settled.
    Jobs beyond [queue_cap] are shed with a retriable [overloaded] reply;
    a job id equal to one still in flight is rejected ([bad-job]).
    Equivalent to {!serve_sockets} with no listeners, no cache and no
    journal, the channel pair as the sole (EOF-drains) client.

    A line [{"stats": true}] (optionally with an ["id"]) is a control
    request, not a job: it is answered immediately — regardless of queue
    depth — with [{"id": …, "stats": {…}}] carrying the
    [Obs.Metrics] snapshot (job/retry/death counters, queue gauges,
    latency histograms) at that instant. *)
