(** Certificate-gated LRU result cache for the serve loop.

    Settled replies are keyed by {!Journal.canonical_digest} — the job
    with its id blanked — so two clients submitting the same work under
    different ids share one entry. The safety argument is PR 7's
    portable certificates: a stored reply is served only after
    [Cert.Checker.check_reply] re-validates it at lookup time, so a hit
    can never hand out an answer the independent checker would refuse,
    no matter how the entry got into the cache (computed this run,
    seeded from a journal on startup, or tampered with on disk). An
    entry whose certificate fails is evicted and the job recomputes.

    Sizing is by entry count with least-recently-used eviction; error
    replies are never stored. Metrics: [cache.hits], [cache.misses],
    [cache.evictions], [cache.cert_rejects] (each reject also emits a
    reason-coded [cache.cert_reject] trace instant), and the
    [cache.entries] gauge. *)

type t

type lookup =
  | Hit of Proto.reply
      (** certificate re-checked; id rewritten to the requester's,
          [wall_s] zeroed (no supervisor time was spent) *)
  | Miss
  | Cert_reject of string
      (** an entry existed but its certificate failed re-checking; it
          has been evicted and the payload is the checker's reason. The
          caller must recompute, exactly as on [Miss]. *)

val create : entries:int -> t
(** An LRU cache holding at most [entries] replies. [entries <= 0]
    disables caching: {!find} always misses (without counting) and
    {!store} is a no-op. *)

val length : t -> int
val enabled : t -> bool

val find : t -> digest:string -> id:string -> lookup
(** Looks up the canonical digest and re-checks the stored certificate
    (see the safety argument above). A [Hit] refreshes recency. *)

val store : t -> digest:string -> Proto.reply -> unit
(** Inserts or refreshes an entry, evicting the least recently used
    entries beyond capacity. Error replies ([V_failed]) are ignored —
    they describe circumstance, not the job's answer. Certificates are
    {e not} checked here; the gate sits at {!find}, once, on the serving
    path. *)
