(* The protocol implementation lives in the dependency-free [cert]
   library so the independent certificate checker can parse reply
   streams without linking the solver stack; this module re-exports it
   under its historical name. *)

module Json = Cert.Json
include Cert.Proto
