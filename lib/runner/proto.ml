module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let buf_add_escaped b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let rec emit b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.9g" f)
        else Buffer.add_string b "null"
    | Str s -> buf_add_escaped b s
    | List vs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            emit b v)
          vs;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            buf_add_escaped b k;
            Buffer.add_char b ':';
            emit b v)
          fields;
        Buffer.add_char b '}'

  let to_string v =
    let b = Buffer.create 256 in
    emit b v;
    Buffer.contents b

  exception Bad of string

  (* Minimal recursive-descent parser, sufficient for re-reading what
     [to_string] emits (journal lines, job/reply frames). Input bytes above
     0x7f pass through untouched; [\uXXXX] escapes decode to a single byte
     when < 0x100 and to '?' otherwise. *)
  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let skip_ws () =
      while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n' || s.[!pos] = '\r')
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let hex c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail "bad hex digit in \\u escape"
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
              incr pos;
              (if !pos >= n then fail "unterminated escape"
               else
                 match s.[!pos] with
                 | '"' -> Buffer.add_char b '"'; incr pos
                 | '\\' -> Buffer.add_char b '\\'; incr pos
                 | '/' -> Buffer.add_char b '/'; incr pos
                 | 'n' -> Buffer.add_char b '\n'; incr pos
                 | 'r' -> Buffer.add_char b '\r'; incr pos
                 | 't' -> Buffer.add_char b '\t'; incr pos
                 | 'b' -> Buffer.add_char b '\b'; incr pos
                 | 'f' -> Buffer.add_char b '\012'; incr pos
                 | 'u' ->
                     if !pos + 4 >= n then fail "truncated \\u escape";
                     let v =
                       (hex s.[!pos + 1] lsl 12)
                       lor (hex s.[!pos + 2] lsl 8)
                       lor (hex s.[!pos + 3] lsl 4)
                       lor hex s.[!pos + 4]
                     in
                     Buffer.add_char b (if v < 0x100 then Char.chr v else '?');
                     pos := !pos + 5
                 | c -> fail (Printf.sprintf "bad escape \\%c" c));
              loop ()
          | c -> Buffer.add_char b c; incr pos; loop ()
      in
      loop ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && is_num_char s.[!pos] do
        incr pos
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> begin
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok)
        end
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 'n' -> literal "null" Null
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            List []
          end
          else begin
            let items = ref [ parse_value () ] in
            skip_ws ();
            while peek () = Some ',' do
              incr pos;
              items := parse_value () :: !items;
              skip_ws ()
            done;
            expect ']';
            List (List.rev !items)
          end
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let field () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              (k, v)
            in
            let fields = ref [ field () ] in
            skip_ws ();
            while peek () = Some ',' do
              incr pos;
              fields := field () :: !fields;
              skip_ws ()
            done;
            expect '}';
            Obj (List.rev !fields)
          end
      | Some _ -> parse_number ()
    in
    match parse_value () with
    | v ->
        skip_ws ();
        if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
        else Ok v
    | exception Bad msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | Null | Bool _ | Int _ | Float _ | Str _ | List _ -> None

  let to_int_opt = function Int i -> Some i | _ -> None
  let to_str_opt = function Str s -> Some s | _ -> None

  let to_float_opt = function
    | Float f -> Some f
    | Int i -> Some (float_of_int i)
    | _ -> None
end

open Resilience

type budget_spec = { deadline : float option; steps : int option; memo_cap : int option }

let no_budget = { deadline = None; steps = None; memo_cap = None }

type job = {
  id : string;
  db : string;
  query : string;
  budget : budget_spec;
  faults : string option;
}

type verdict =
  | V_exact of { value : Value.t; algorithm : string; witness : int list option }
  | V_bounded of { lower : Value.t; upper : Value.t; witness : int list option; reason : string }
  | V_failed of { kind : string; message : string; retriable : bool }

type reply = {
  id : string;
  attempts : int;
  steps : int;
  wall_s : float;
  stages : (string * float) list;
  verdict : verdict;
}

let failed ?(retriable = false) ~id ~kind fmt =
  Printf.ksprintf
    (fun message ->
      {
        id;
        attempts = 1;
        steps = 0;
        wall_s = 0.0;
        stages = [];
        verdict = V_failed { kind; message; retriable };
      })
    fmt

(* ---- encoding ---- *)

let value_to_json = function Value.Finite n -> Json.Int n | Value.Infinite -> Json.Str "inf"

let value_of_json = function
  | Json.Int n -> Some (Value.Finite n)
  | Json.Str "inf" -> Some Value.Infinite
  | _ -> None

let opt field conv = function None -> [] | Some v -> [ (field, conv v) ]

let budget_fields b =
  opt "timeout" (fun f -> Json.Float f) b.deadline
  @ opt "steps" (fun i -> Json.Int i) b.steps
  @ opt "memo_cap" (fun i -> Json.Int i) b.memo_cap

let job_to_json (j : job) =
  Json.to_string
    (Json.Obj
       ([ ("id", Json.Str j.id); ("query", Json.Str j.query); ("db", Json.Str j.db) ]
       @ budget_fields j.budget
       @ opt "faults" (fun s -> Json.Str s) j.faults))

let witness_fields = function
  | None -> []
  | Some w -> [ ("witness", Json.List (List.map (fun i -> Json.Int i) w)) ]

(* Emitted only when non-empty, so untraced replies are byte-identical to
   the pre-telemetry schema. *)
let stages_fields = function
  | [] -> []
  | sts -> [ ("stages", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) sts)) ]

let reply_to_obj (r : reply) =
  let common =
    [
      ("id", Json.Str r.id);
      ("attempts", Json.Int r.attempts);
      ("steps", Json.Int r.steps);
      ("wall_s", Json.Float r.wall_s);
    ]
    @ stages_fields r.stages
  in
  let rest =
    match r.verdict with
    | V_exact { value; algorithm; witness } ->
        [
          ("outcome", Json.Str "exact");
          ("value", value_to_json value);
          ("algorithm", Json.Str algorithm);
        ]
        @ witness_fields witness
    | V_bounded { lower; upper; witness; reason } ->
        [
          ("outcome", Json.Str "bounded");
          ("lower", value_to_json lower);
          ("upper", value_to_json upper);
          ("reason", Json.Str reason);
        ]
        @ witness_fields witness
    | V_failed { kind; message; retriable } ->
        [
          ("outcome", Json.Str "error");
          ("kind", Json.Str kind);
          ("message", Json.Str message);
          ("retriable", Json.Bool retriable);
        ]
  in
  Json.Obj (common @ rest)

let reply_to_json r = Json.to_string (reply_to_obj r)

(* ---- decoding ---- *)

let field_err what = Error (Printf.sprintf "missing or ill-typed field %S" what)

let get obj what conv = match Option.bind (Json.member what obj) conv with
  | Some v -> Ok v
  | None -> field_err what

let get_opt obj what conv =
  match Json.member what obj with
  | None | Some Json.Null -> Ok None
  | Some v -> ( match conv v with Some v -> Ok (Some v) | None -> field_err what)

let ( let* ) = Result.bind

let job_of_obj obj =
  let* id = get obj "id" Json.to_str_opt in
  let* query = get obj "query" Json.to_str_opt in
  let* db = get obj "db" Json.to_str_opt in
  let* deadline = get_opt obj "timeout" Json.to_float_opt in
  let* steps = get_opt obj "steps" Json.to_int_opt in
  let* memo_cap = get_opt obj "memo_cap" Json.to_int_opt in
  let* faults = get_opt obj "faults" Json.to_str_opt in
  Ok { id; db; query; budget = { deadline; steps; memo_cap }; faults }

let job_of_json s =
  let* v = Json.parse s in
  job_of_obj v

let witness_of obj =
  match Json.member "witness" obj with
  | None | Some Json.Null -> Ok None
  | Some (Json.List items) ->
      let ints = List.filter_map Json.to_int_opt items in
      if List.length ints = List.length items then Ok (Some ints) else field_err "witness"
  | Some _ -> field_err "witness"

let stages_of obj =
  match Json.member "stages" obj with
  | None | Some Json.Null -> Ok []
  | Some (Json.Obj fields) ->
      let parsed =
        List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.to_float_opt v)) fields
      in
      if List.length parsed = List.length fields then Ok parsed else field_err "stages"
  | Some _ -> field_err "stages"

let reply_of_obj obj =
  let* id = get obj "id" Json.to_str_opt in
  let* attempts = get obj "attempts" Json.to_int_opt in
  let* steps = get obj "steps" Json.to_int_opt in
  let* wall_s = get obj "wall_s" Json.to_float_opt in
  let* stages = stages_of obj in
  let* outcome = get obj "outcome" Json.to_str_opt in
  let* verdict =
    match outcome with
    | "exact" ->
        let* value = get obj "value" value_of_json in
        let* algorithm = get obj "algorithm" Json.to_str_opt in
        let* witness = witness_of obj in
        Ok (V_exact { value; algorithm; witness })
    | "bounded" ->
        let* lower = get obj "lower" value_of_json in
        let* upper = get obj "upper" value_of_json in
        let* reason = get obj "reason" Json.to_str_opt in
        let* witness = witness_of obj in
        Ok (V_bounded { lower; upper; witness; reason })
    | "error" ->
        let* kind = get obj "kind" Json.to_str_opt in
        let* message = get obj "message" Json.to_str_opt in
        let* retriable = get obj "retriable" (function Json.Bool b -> Some b | _ -> None) in
        Ok (V_failed { kind; message; retriable })
    | other -> Error (Printf.sprintf "unknown outcome %S" other)
  in
  Ok { id; attempts; steps; wall_s; stages; verdict }

let reply_of_json s =
  let* v = Json.parse s in
  reply_of_obj v

(* [wall_s] and [stages] are both wall-clock measurements: legitimately
   different across otherwise-identical runs, so both are excluded. *)
let reply_equal_ignoring_time (a : reply) (b : reply) =
  a.id = b.id && a.attempts = b.attempts && a.steps = b.steps && a.verdict = b.verdict

let verdict_name = function
  | V_exact _ -> "exact"
  | V_bounded _ -> "bounded"
  | V_failed _ -> "error"
