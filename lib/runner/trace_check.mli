(** Validator for trace files written by [Obs.Trace] — the library
    behind [rpq trace-check].

    A [.jsonl] input may be the {e concatenation} of trace files from
    several processes (a traced client plus a serve supervisor whose
    file already interleaves its workers' re-emitted spans): each
    segment's meta record re-anchors the relative timestamps that
    follow onto one absolute axis. Checks, in order:

    - every event parses with the strict Proto JSON reader and carries
      the structural fields its type requires;
    - {b depth containment}, per process: each depth-d+1 span lies
      within some depth-d span of the same pid;
    - {b parent containment}, by identity: each span naming a parent
      ([psid]) finds it in the file — a missing parent is an {e orphan}
      and rejects the trace — shares its trace id, and lies within its
      interval. Synthesized [interrupted] spans from killed workers are
      held to the same rule.

    Non-[.jsonl] inputs are read as Chrome trace arrays (one process,
    identity fields in [args], microsecond timestamps). *)

type stats = {
  events : int;
  spans : int;
  processes : int;  (** distinct pids across spans and meta records *)
  traces : int;  (** distinct trace ids *)
}

val check_file : string -> (stats, string) result
(** Validate one trace file; the error string names the first violation
    (prefixed with the path). *)

val check_jsonl_string : string -> (stats, string) result
(** Validate JSONL trace content directly (tests, in-memory stitches). *)

val check_chrome_string : string -> (stats, string) result
