(** Wire protocol for the supervised execution layer.

    Jobs and replies cross the supervisor/worker pipe boundary (and the
    [rpq serve] stdin/stdout boundary, and the journal) as single lines of
    JSON, so one schema serves all three. The encoder/decoder pair is
    hand-rolled: the project deliberately has no JSON dependency, and the
    subset needed here (objects, arrays, strings, ints, floats, bools,
    null) is small enough to keep total. *)

(** Minimal JSON values with a total emitter and a parser for re-reading
    what the emitter produced. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact one-line rendering. Non-finite floats emit as [null];
      control characters, backslash, and double quote are escaped, so the
      result never contains a raw newline — safe for line-delimited
      framing. *)

  val parse : string -> (t, string) result
  (** Strict: the whole input must be one JSON value (surrounding
      whitespace allowed). Duplicate keys keep the first occurrence. *)

  val member : string -> t -> t option
  val to_int_opt : t -> int option
  val to_str_opt : t -> string option

  val to_float_opt : t -> float option
  (** Accepts ints too (JSON does not distinguish [1] from [1.0]). *)
end

type budget_spec = {
  deadline : float option;  (** seconds of processor time *)
  steps : int option;
  memo_cap : int option;
}

val no_budget : budget_spec

type job = {
  id : string;  (** caller-chosen; echoed in the reply and the journal *)
  db : string;  (** database in {!Graphdb.Serialize} text form *)
  query : string;  (** RPQ regex, [Automata.Regex.parse] syntax *)
  budget : budget_spec;
  faults : string option;
      (** per-job {!Resilience.Faults} plan ([Faults.parse] grammar);
          [None] inherits the worker's ambient plan *)
}

type verdict =
  | V_exact of {
      value : Resilience.Value.t;
      algorithm : string;
      witness : int list option;  (** fact ids of an optimal removal set *)
    }
  | V_bounded of {
      lower : Resilience.Value.t;
      upper : Resilience.Value.t;
      witness : int list option;  (** fact ids certifying [upper] *)
      reason : string;
    }
  | V_failed of { kind : string; message : string; retriable : bool }
      (** [kind] is a stable machine-readable tag ("crash", "timeout",
          "overloaded", "bad-job", ...); [retriable] tells callers of
          [rpq serve] whether resubmitting the same job can help. *)

type reply = {
  id : string;
  attempts : int;  (** 1 for a first-try success *)
  steps : int;  (** budget ticks spent by the successful attempt *)
  wall_s : float;  (** supervisor-side wall-clock seconds, volatile *)
  stages : (string * float) list;
      (** worker-side seconds per solver stage ({!Obs.Trace.with_stages}),
          sorted by stage name; empty when stage accounting was off. On
          the wire it is an optional [stages] object, omitted when empty.
          Volatile like [wall_s]: excluded from
          {!reply_equal_ignoring_time}. *)
  verdict : verdict;
}

val failed :
  ?retriable:bool -> id:string -> kind:string -> ('a, unit, string, reply) format4 -> 'a
(** [failed ~id ~kind fmt ...] builds an error reply ([attempts = 1],
    [retriable] defaults to [false]). *)

val job_to_json : job -> string
val job_of_json : string -> (job, string) result
val reply_to_json : reply -> string
val reply_of_json : string -> (reply, string) result

val reply_to_obj : reply -> Json.t
val reply_of_obj : Json.t -> (reply, string) result
(** The [Json.t]-level halves of [reply_to_json]/[reply_of_json], for
    embedding replies inside larger objects (journal entries). *)

val reply_equal_ignoring_time : reply -> reply -> bool
(** Structural equality minus [wall_s] and [stages] — the comparison used by journal
    re-verification and the resume-determinism tests, where wall-clock is
    the only legitimately nondeterministic field. *)

val verdict_name : verdict -> string
(** [exact], [bounded], or [error] — matching the wire [outcome] field. *)
