(** Wire protocol for the supervised execution layer.

    The implementation lives in {!Cert.Proto} (and {!Cert.Json}) inside
    the dependency-free [cert] library, so that [rpq_certcheck] can parse
    reply streams without linking any solver code. This module re-exports
    it unchanged under the historical [Runner.Proto] name. *)

module Json = Cert.Json

include module type of struct
  include Cert.Proto
end
