type capacity = Finite of int | Inf

let cap_add a b =
  match (a, b) with
  | Finite x, Finite y -> Finite (x + y)
  | _ -> Inf

let cap_compare a b =
  match (a, b) with
  | Finite x, Finite y -> compare x y
  | Finite _, Inf -> -1
  | Inf, Finite _ -> 1
  | Inf, Inf -> 0

let pp_capacity ppf = function
  | Finite x -> Format.pp_print_int ppf x
  | Inf -> Format.pp_print_string ppf "+\xe2\x88\x9e"

type t = {
  mutable nvertices : int;
  mutable edges : (int * int * capacity) list;  (* reversed order of insertion *)
  mutable nedges : int;
}

let create () = { nvertices = 0; edges = []; nedges = 0 }

let add_vertex t =
  let v = t.nvertices in
  t.nvertices <- v + 1;
  v

let vertex_count t = t.nvertices

let unsafe_add_edge t ~src ~dst cap =
  let id = t.nedges in
  t.nedges <- id + 1;
  t.edges <- (src, dst, cap) :: t.edges;
  id

let add_edge t ~src ~dst cap =
  if src < 0 || src >= t.nvertices || dst < 0 || dst >= t.nvertices then
    invalid_arg "Network.add_edge: vertex out of range";
  (match cap with
  | Finite c when c < 0 -> invalid_arg "Network.add_edge: negative capacity"
  | _ -> ());
  unsafe_add_edge t ~src ~dst cap

let edge_count t = t.nedges
let edges_array t = Array.of_list (List.rev t.edges)
let edge_info t id = (edges_array t).(id)

let pp ppf t =
  Format.fprintf ppf "@[<v>network: %d vertices, %d edges@," t.nvertices t.nedges;
  Array.iteri
    (fun id (s, d, c) -> Format.fprintf ppf "  e%d: %d -> %d (%a)@," id s d pp_capacity c)
    (edges_array t);
  Format.fprintf ppf "@]"

type cut = { value : capacity; edges : int list }

(* Dinic's algorithm. Infinite capacities are encoded as (total finite
   capacity + 1): any finite cut has value at most the total finite capacity,
   so a computed min cut exceeding it means the true min cut is infinite. *)
let min_cut_certified t ~source ~sink =
  if source = sink then invalid_arg "Network.min_cut: source = sink";
  let es = edges_array t in
  let m = Array.length es in
  let total_finite =
    Array.fold_left (fun acc (_, _, c) -> match c with Finite x -> acc + x | Inf -> acc) 0 es
  in
  let inf_internal = total_finite + 1 in
  let n = t.nvertices in
  (* Arc arrays: arc 2i is edge i forward, arc 2i+1 its residual. *)
  let arc_to = Array.make (2 * m) 0 in
  let arc_cap = Array.make (2 * m) 0 in
  let head = Array.make n [] in
  Array.iteri
    (fun i (s, d, c) ->
      arc_to.(2 * i) <- d;
      arc_cap.(2 * i) <- (match c with Finite x -> x | Inf -> inf_internal);
      arc_to.((2 * i) + 1) <- s;
      arc_cap.((2 * i) + 1) <- 0;
      head.(s) <- (2 * i) :: head.(s);
      head.(d) <- ((2 * i) + 1) :: head.(d))
    es;
  let head = Array.map Array.of_list head in
  (* Initial forward capacities, to recover per-edge flows at the end. *)
  let orig_fwd = Array.init m (fun i -> arc_cap.(2 * i)) in
  let level = Array.make n (-1) in
  let iter = Array.make n 0 in
  let bfs () =
    Array.fill level 0 n (-1);
    let q = Queue.create () in
    level.(source) <- 0;
    Queue.add source q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      Array.iter
        (fun a ->
          let u = arc_to.(a) in
          if arc_cap.(a) > 0 && level.(u) < 0 then begin
            level.(u) <- level.(v) + 1;
            Queue.add u q
          end)
        head.(v)
    done;
    level.(sink) >= 0
  in
  let rec dfs v f =
    if v = sink then f
    else begin
      let res = ref 0 in
      while !res = 0 && iter.(v) < Array.length head.(v) do
        let a = head.(v).(iter.(v)) in
        let u = arc_to.(a) in
        if arc_cap.(a) > 0 && level.(u) = level.(v) + 1 then begin
          let d = dfs u (min f arc_cap.(a)) in
          if d > 0 then begin
            arc_cap.(a) <- arc_cap.(a) - d;
            arc_cap.(a lxor 1) <- arc_cap.(a lxor 1) + d;
            res := d
          end
          else iter.(v) <- iter.(v) + 1
        end
        else iter.(v) <- iter.(v) + 1
      done;
      !res
    end
  in
  let flow = ref 0 in
  while !flow <= total_finite && bfs () do
    Array.fill iter 0 n 0;
    let continue = ref true in
    while !continue do
      let f = dfs source max_int in
      if f = 0 then continue := false else flow := !flow + f
    done
  done;
  let edge_flows () = Array.init m (fun i -> orig_fwd.(i) - arc_cap.(2 * i)) in
  if !flow > total_finite then ({ value = Inf; edges = [] }, edge_flows ())
  else begin
    (* Source side of the residual graph. *)
    let reach = Array.make n false in
    let q = Queue.create () in
    reach.(source) <- true;
    Queue.add source q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      Array.iter
        (fun a ->
          let u = arc_to.(a) in
          if arc_cap.(a) > 0 && not reach.(u) then begin
            reach.(u) <- true;
            Queue.add u q
          end)
        head.(v)
    done;
    let cut_edges = ref [] in
    Array.iteri
      (fun i (s, d, c) ->
        match c with
        | Finite x when x > 0 && reach.(s) && not reach.(d) -> cut_edges := i :: !cut_edges
        | _ -> ())
      es;
    ({ value = Finite !flow; edges = List.rev !cut_edges }, edge_flows ())
  end

let min_cut t ~source ~sink = fst (min_cut_certified t ~source ~sink)
let max_flow_value t ~source ~sink = (min_cut t ~source ~sink).value

(* ---- Invariant validation (see DESIGN.md, "Correctness tooling") ---- *)

let validate t =
  let module C = Invariant.Collector in
  let c = C.create "Flow.Network" in
  C.check c (t.nvertices >= 0) ~invariant:"vertex-count" "nvertices = %d is negative" t.nvertices;
  C.check c
    (List.length t.edges = t.nedges)
    ~invariant:"edge-accounting" "nedges = %d but %d edges stored" t.nedges
    (List.length t.edges);
  Array.iteri
    (fun id (s, d, cap) ->
      C.check c
        (s >= 0 && s < t.nvertices && d >= 0 && d < t.nvertices)
        ~invariant:"endpoint-range" "edge %d: %d -> %d outside [0,%d)" id s d t.nvertices;
      match cap with
      | Finite x ->
          C.check c (x >= 0) ~invariant:"capacity-nonnegative" "edge %d has capacity %d" id x
      | Inf -> ())
    (edges_array t);
  C.result c

let validate_flow t ~source ~sink ~flow ~value =
  let module C = Invariant.Collector in
  let c = C.create "Flow.Network" in
  let es = edges_array t in
  let m = Array.length es in
  C.check c
    (Array.length flow = m)
    ~invariant:"flow-length" "flow vector has length %d, expected %d" (Array.length flow) m;
  if Array.length flow = m then begin
    let net = Array.make (max t.nvertices 1) 0 in
    Array.iteri
      (fun i (s, d, cap) ->
        C.check c (flow.(i) >= 0) ~invariant:"flow-nonnegative" "edge %d carries flow %d" i
          flow.(i);
        (match cap with
        | Finite x ->
            C.check c
              (flow.(i) <= x)
              ~invariant:"capacity-respected" "edge %d carries %d > capacity %d" i flow.(i) x
        | Inf -> ());
        (* Skew-symmetric bookkeeping: each unit leaving s enters d. *)
        net.(s) <- net.(s) - flow.(i);
        net.(d) <- net.(d) + flow.(i))
      es;
    for v = 0 to t.nvertices - 1 do
      if v <> source && v <> sink then
        C.check c
          (net.(v) = 0)
          ~invariant:"conservation" "vertex %d has net flow %d (should be 0)" v net.(v)
    done;
    if source <> sink then begin
      C.check c
        (net.(source) = -value)
        ~invariant:"flow-value" "net flow out of the source is %d, claimed value %d"
        (-net.(source)) value;
      C.check c
        (net.(sink) = value)
        ~invariant:"flow-value" "net flow into the sink is %d, claimed value %d" net.(sink) value
    end
  end;
  C.result c

let validate_cut t ~source ~sink cut =
  let module C = Invariant.Collector in
  let c = C.create "Flow.Network" in
  let es = edges_array t in
  let m = Array.length es in
  match cut.value with
  | Inf ->
      C.check c (cut.edges = []) ~invariant:"cut-edges"
        "an infinite cut must report no cut edges (got %d)" (List.length cut.edges);
      C.result c
  | Finite v ->
      C.check c
        (List.length (List.sort_uniq compare cut.edges) = List.length cut.edges)
        ~invariant:"cut-edges" "duplicate edge ids in the cut";
      let in_cut = Array.make (max m 1) false in
      let total = ref 0 in
      List.iter
        (fun id ->
          if id < 0 || id >= m then
            C.add c ~invariant:"cut-edges" "cut references unknown edge id %d" id
          else begin
            in_cut.(id) <- true;
            match es.(id) with
            | _, _, Finite x -> total := !total + x
            | s, d, Inf ->
                C.add c ~invariant:"cut-finite" "cut contains the +∞ edge %d (%d -> %d)" id s d
          end)
        cut.edges;
      C.check c (!total = v) ~invariant:"cut-value"
        "cut edges have total capacity %d, claimed value %d" !total v;
      (* Removing the cut edges must disconnect source from sink in the
         positive-capacity subgraph. *)
      if C.violations c = [] && t.nvertices > 0 then begin
        let adj = Array.make t.nvertices [] in
        Array.iteri
          (fun id (s, d, cap) ->
            let positive = match cap with Finite x -> x > 0 | Inf -> true in
            if positive && not in_cut.(id) then adj.(s) <- d :: adj.(s))
          es;
        let seen = Array.make t.nvertices false in
        let rec go v =
          if not seen.(v) then begin
            seen.(v) <- true;
            List.iter go adj.(v)
          end
        in
        go source;
        C.check c (not seen.(sink)) ~invariant:"cut-separates"
          "sink %d still reachable from source %d after removing the cut edges" sink source
      end;
      C.result c

let validate_certificate t ~source ~sink cut ~flow =
  match cut.value with
  | Inf -> validate_cut t ~source ~sink cut
  | Finite v -> begin
      (* Weak duality: a feasible flow and a cut of equal value certify that
         both are optimal. *)
      match (validate_cut t ~source ~sink cut, validate_flow t ~source ~sink ~flow ~value:v) with
      | Ok (), Ok () -> Ok ()
      | Error a, Error b -> Error (a @ b)
      | (Error _ as e), Ok () | Ok (), (Error _ as e) -> e
    end
