(* Highest-label push-relabel with the gap heuristic. Infinite capacities
   are encoded as (total finite capacity + 1), like in Network.min_cut. *)

let min_cut_certified (t : Network.t) ~source ~sink =
  if source = sink then invalid_arg "Push_relabel.min_cut: source = sink";
  let m = Network.edge_count t in
  let es = Array.init m (Network.edge_info t) in
  let total_finite =
    Array.fold_left
      (fun acc (_, _, c) -> match c with Network.Finite x -> acc + x | Network.Inf -> acc)
      0 es
  in
  let inf_internal = total_finite + 1 in
  let n = Network.vertex_count t in
  (* Arc arrays: arc 2i = edge i, arc 2i+1 = its reverse. *)
  let arc_to = Array.make (2 * m) 0 in
  let cap = Array.make (2 * m) 0 in
  let head = Array.make n [] in
  Array.iteri
    (fun i (s, d, c) ->
      arc_to.(2 * i) <- d;
      cap.(2 * i) <- (match c with Network.Finite x -> x | Network.Inf -> inf_internal);
      arc_to.((2 * i) + 1) <- s;
      head.(s) <- (2 * i) :: head.(s);
      head.(d) <- ((2 * i) + 1) :: head.(d))
    es;
  let head = Array.map Array.of_list head in
  (* Initial forward capacities, to recover per-edge flows at the end. *)
  let orig_fwd = Array.init m (fun i -> cap.(2 * i)) in
  let excess = Array.make n 0 in
  let height = Array.make n 0 in
  let count = Array.make ((2 * n) + 1) 0 in
  (* Initialize: saturate source arcs. *)
  height.(source) <- n;
  count.(0) <- n - 1;
  count.(n) <- 1;
  Array.iter
    (fun a ->
      if cap.(a) > 0 then begin
        let d = arc_to.(a) in
        excess.(d) <- excess.(d) + cap.(a);
        excess.(source) <- excess.(source) - cap.(a);
        cap.(a lxor 1) <- cap.(a lxor 1) + cap.(a);
        cap.(a) <- 0
      end)
    head.(source);
  (* Active vertices by height (highest-label selection). *)
  let buckets = Array.make ((2 * n) + 1) [] in
  let in_bucket = Array.make n false in
  let highest = ref 0 in
  let activate v =
    if v <> source && v <> sink && (not in_bucket.(v)) && excess.(v) > 0 then begin
      in_bucket.(v) <- true;
      buckets.(height.(v)) <- v :: buckets.(height.(v));
      if height.(v) > !highest then highest := height.(v)
    end
  in
  for v = 0 to n - 1 do
    activate v
  done;
  let push v a =
    let u = arc_to.(a) in
    let delta = min excess.(v) cap.(a) in
    cap.(a) <- cap.(a) - delta;
    cap.(a lxor 1) <- cap.(a lxor 1) + delta;
    excess.(v) <- excess.(v) - delta;
    excess.(u) <- excess.(u) + delta;
    activate u
  in
  let relabel v =
    let old = height.(v) in
    let best = ref ((2 * n) + 1) in
    Array.iter (fun a -> if cap.(a) > 0 then best := min !best (height.(arc_to.(a)) + 1)) head.(v);
    if !best <= 2 * n then begin
      count.(old) <- count.(old) - 1;
      height.(v) <- !best;
      count.(!best) <- count.(!best) + 1;
      (* Gap heuristic: no vertex left at [old] strands everything above. *)
      if count.(old) = 0 && old < n then
        for u = 0 to n - 1 do
          if u <> source && height.(u) > old && height.(u) <= n then begin
            count.(height.(u)) <- count.(height.(u)) - 1;
            height.(u) <- n + 1;
            count.(n + 1) <- count.(n + 1) + 1
          end
        done
    end
    else begin
      count.(old) <- count.(old) - 1;
      height.(v) <- (2 * n) + 1 - 1;
      count.(height.(v)) <- count.(height.(v)) + 1
    end
  in
  let discharge v =
    let continue = ref true in
    while !continue && excess.(v) > 0 do
      let pushed = ref false in
      Array.iter
        (fun a ->
          if excess.(v) > 0 && cap.(a) > 0 && height.(v) = height.(arc_to.(a)) + 1 then begin
            push v a;
            pushed := true
          end)
        head.(v);
      if excess.(v) > 0 && not !pushed then begin
        let before = height.(v) in
        relabel v;
        if height.(v) = before then continue := false
      end
    done
  in
  let steps = ref 0 in
  let max_steps = 20 * n * n * (m + 1) in
  let rec loop () =
    if !steps > max_steps then
      Invariant.internal_error "Push_relabel.min_cut: step budget %d exceeded" max_steps;
    incr steps;
    (* Find the highest non-empty bucket. *)
    while !highest >= 0 && buckets.(!highest) = [] do
      decr highest
    done;
    if !highest >= 0 then begin
      match buckets.(!highest) with
      | v :: rest ->
          buckets.(!highest) <- rest;
          in_bucket.(v) <- false;
          if excess.(v) > 0 && v <> source && v <> sink then begin
            discharge v;
            activate v;
            if height.(v) > !highest then highest := height.(v)
          end;
          loop ()
      | [] -> loop ()
    end
  in
  loop ();
  let flow = excess.(sink) in
  let edge_flows () = Array.init m (fun i -> orig_fwd.(i) - cap.(2 * i)) in
  if flow > total_finite then ({ Network.value = Network.Inf; edges = [] }, edge_flows ())
  else begin
    (* Source side of the residual graph. *)
    let reach = Array.make n false in
    let q = Queue.create () in
    reach.(source) <- true;
    Queue.add source q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      Array.iter
        (fun a ->
          let u = arc_to.(a) in
          if cap.(a) > 0 && not reach.(u) then begin
            reach.(u) <- true;
            Queue.add u q
          end)
        head.(v)
    done;
    let cut_edges = ref [] in
    Array.iteri
      (fun i (s, d, c) ->
        match c with
        | Network.Finite x when x > 0 && reach.(s) && not reach.(d) -> cut_edges := i :: !cut_edges
        | _ -> ())
      es;
    ({ Network.value = Network.Finite flow; edges = List.rev !cut_edges }, edge_flows ())
  end

let min_cut t ~source ~sink = fst (min_cut_certified t ~source ~sink)
let max_flow_value t ~source ~sink = (min_cut t ~source ~sink).Network.value
