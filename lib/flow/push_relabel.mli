(** A second max-flow / min-cut implementation (highest-label push-relabel
    with the gap heuristic), used to cross-check {!Network.min_cut} and in
    the ablation benchmarks. Same semantics as {!Network.min_cut}. *)

val min_cut : Network.t -> source:int -> sink:int -> Network.cut

val min_cut_certified : Network.t -> source:int -> sink:int -> Network.cut * int array
(** Like {!min_cut}, but also returns the per-edge flows, suitable for
    {!Network.validate_certificate} (paranoid {!Resilience.Check} mode
    verifies that cut value and flow value coincide after push-relabel). *)

val max_flow_value : Network.t -> source:int -> sink:int -> Network.capacity
