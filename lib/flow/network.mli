(** Flow networks with integer capacities and +∞ edges.

    The paper reduces resilience to MinCut on networks whose fact-edges carry
    the fact multiplicities and whose structural edges have capacity +∞
    (Theorem 3.3, Proposition 7.5). *)

type capacity = Finite of int | Inf

val cap_add : capacity -> capacity -> capacity
val cap_compare : capacity -> capacity -> int
val pp_capacity : Format.formatter -> capacity -> unit

type t
(** A mutable network under construction. Vertices are integers allocated by
    {!add_vertex}; parallel edges are allowed. *)

val create : unit -> t
val add_vertex : t -> int
val vertex_count : t -> int

val add_edge : t -> src:int -> dst:int -> capacity -> int
(** Adds a directed edge and returns its edge id (ids are dense from 0). *)

val unsafe_add_edge : t -> src:int -> dst:int -> capacity -> int
(** {!add_edge} without the range and non-negativity checks. Only for tests
    of {!validate} and trusted deserialization paths. *)

val edge_count : t -> int
val edge_info : t -> int -> int * int * capacity
(** [(src, dst, capacity)] of an edge id. *)

val pp : Format.formatter -> t -> unit

(** {1 Max-flow / min-cut} *)

type cut = { value : capacity; edges : int list }
(** A minimum cut: its total capacity and the ids of the cut edges (edges
    from the source side to the sink side; only returned when the value is
    finite). *)

val min_cut : t -> source:int -> sink:int -> cut
(** Dinic's algorithm. When the cut value is [Inf] (the sink is not
    separable by finite-capacity edges), [edges] is []. *)

val min_cut_certified : t -> source:int -> sink:int -> cut * int array
(** Like {!min_cut}, but also returns the per-edge flow values of the
    computed maximum flow. When the cut is finite, the pair is a
    self-certifying optimality proof: feed it to {!validate_certificate}
    (weak duality: a feasible flow and a cut of equal value are both
    optimal). When the cut is [Inf] the flow array reflects the internal
    finite encoding and certifies nothing. *)

val max_flow_value : t -> source:int -> sink:int -> capacity

(** {1 Invariant validation}

    See the "Correctness tooling" section of DESIGN.md. These back the
    {!Resilience.Check} levels: [validate] is cheap (linear), the
    certificate checks are for paranoid mode. *)

val validate : t -> (unit, Invariant.violation list) result
(** Structural invariants: endpoint ranges, non-negative finite capacities,
    edge-count accounting. Networks built through {!add_vertex}/{!add_edge}
    always validate. *)

val validate_flow :
  t -> source:int -> sink:int -> flow:int array -> value:int ->
  (unit, Invariant.violation list) result
(** Feasibility of a flow vector: one value per edge, [0 ≤ flow ≤ capacity],
    conservation at every vertex other than [source]/[sink], and net outflow
    at the source (= net inflow at the sink) equal to [value]. *)

val validate_cut :
  t -> source:int -> sink:int -> cut -> (unit, Invariant.violation list) result
(** A finite cut must consist of distinct finite-capacity edge ids whose
    capacities sum to the claimed value and whose removal disconnects
    [source] from [sink] in the positive-capacity subgraph; an [Inf] cut
    must report no edges. *)

val validate_certificate :
  t -> source:int -> sink:int -> cut -> flow:int array ->
  (unit, Invariant.violation list) result
(** Conjunction of {!validate_cut} and {!validate_flow} at the cut's value:
    by weak duality a passing pair proves the cut minimum and the flow
    maximum. *)
