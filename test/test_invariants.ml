(* The invariant-validation layer: [validate] must accept everything the
   public constructors build, reject seeded corruptions (built through the
   unsafe_* constructors), and paranoid Check mode must not change any
   solver's answer. *)
open Resilience
module Db = Graphdb.Db
module Nfa = Automata.Nfa
module Dfa = Automata.Dfa
module Net = Flow.Network

let qcheck = QCheck_alcotest.to_alcotest
let check = Alcotest.(check bool)

let ok_or_report name = function
  | Ok () -> ()
  | Error vs -> Alcotest.failf "%s: %s" name (Invariant.violations_to_string vs)

let is_error name = function
  | Ok () -> Alcotest.failf "%s: corruption not detected" name
  | Error (_ : Invariant.violation list) -> ()

(* ---- Generators ---- *)

let arb_db ?(max_mult = 3) ~max_facts () =
  QCheck.make
    ~print:(fun (d : Db.t) -> Format.asprintf "%a" Db.pp d)
    QCheck.Gen.(
      let* seed = int_bound 1000000 in
      let* nnodes = int_range 2 5 in
      let* nfacts = int_range 1 max_facts in
      return
        (Graphdb.Generate.random ~nnodes ~nfacts ~alphabet:[ 'a'; 'b'; 'c'; 'x' ] ~max_mult
           ~seed ()))

let arb_words =
  QCheck.make
    ~print:(String.concat ",")
    QCheck.Gen.(
      small_list (string_size ~gen:(char_range 'a' 'd') (int_range 1 4)) >|= fun ws ->
      if ws = [] then [ "a" ] else ws)

let arb_network =
  QCheck.make
    ~print:(fun (net, _, _) -> Format.asprintf "%a" Net.pp net)
    QCheck.Gen.(
      let* nv = int_range 2 7 in
      let* edges =
        list_size (int_range 1 14)
          (triple (int_bound (nv - 1)) (int_bound (nv - 1)) (int_range 0 9))
      in
      let net = Net.create () in
      for _ = 1 to nv do
        ignore (Net.add_vertex net)
      done;
      List.iter
        (fun (s, d, c) -> ignore (Net.add_edge net ~src:s ~dst:d (Net.Finite c)))
        edges;
      return (net, 0, nv - 1))

(* ---- validate accepts what the constructors build ---- *)

let prop_nfa_validates =
  QCheck.Test.make ~name:"Nfa/Dfa.validate accept constructed automata" ~count:100 arb_words
    (fun ws ->
      let a = Nfa.of_words ws in
      ok_or_report "nfa" (Nfa.validate a);
      ok_or_report "dfa" (Dfa.validate ~expect_reachable:true (Dfa.of_nfa a));
      true)

let prop_db_validates =
  QCheck.Test.make ~name:"Db.validate accepts generated databases" ~count:150
    (arb_db ~max_facts:10 ()) (fun d ->
      ok_or_report "db" (Db.validate d);
      ok_or_report "restrict"
        (Db.validate (Db.restrict d ~removed:(fun id -> id mod 2 = 0)));
      true)

let prop_network_validates =
  QCheck.Test.make ~name:"Network.validate + MinCut certificates" ~count:100 arb_network
    (fun (net, source, sink) ->
      ok_or_report "network" (Net.validate net);
      let cut, flow = Net.min_cut_certified net ~source ~sink in
      ok_or_report "dinic certificate" (Net.validate_certificate net ~source ~sink cut ~flow);
      let cut', flow' = Flow.Push_relabel.min_cut_certified net ~source ~sink in
      ok_or_report "push-relabel certificate"
        (Net.validate_certificate net ~source ~sink cut' ~flow:flow');
      check "algorithms agree" true (Net.cap_compare cut.Net.value cut'.Net.value = 0);
      true)

let test_hypergraph_validate () =
  let h = Hypergraph.make ~vertices:[ 0; 1; 2; 3 ] ~edges:[ [ 0; 1 ]; [ 2; 1; 3 ] ] in
  ok_or_report "hypergraph" (Hypergraph.validate h)

let test_simplex_validate () =
  let p =
    Lp.Simplex.lp_relaxation_of_cover ~nvars:3 ~weights:[| 1.0; 2.0; 1.0 |]
      ~sets:[ [ 0; 1 ]; [ 1; 2 ] ]
  in
  ok_or_report "problem" (Lp.Simplex.validate_problem p);
  match Lp.Simplex.solve p with
  | Lp.Simplex.Optimal { value; solution } ->
      ok_or_report "solution" (Lp.Simplex.validate_solution p ~value ~solution)
  | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> Alcotest.fail "cover LP must be optimal"

let test_submodular_validate () =
  (* Coverage functions are submodular; |S|² is strictly supermodular. *)
  let sets = [| [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ]; [ 0; 3 ]; [ 1; 3 ] |] in
  let coverage z =
    let covered = Hashtbl.create 8 in
    Array.iteri (fun i s -> if z.(i) then List.iter (fun v -> Hashtbl.replace covered v ()) s) sets;
    Hashtbl.length covered
  in
  ok_or_report "coverage (exhaustive)" (Submodular.Sfm.validate_submodular ~n:5 coverage);
  let card2 z =
    let c = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 z in
    c * c
  in
  is_error "|S|^2 (exhaustive)" (Submodular.Sfm.validate_submodular ~n:5 card2);
  (* Large ground set: the sampled path must still catch it. *)
  is_error "|S|^2 (sampled)" (Submodular.Sfm.validate_submodular ~samples:400 ~n:16 card2)

(* ---- validate rejects seeded corruptions ---- *)

let test_corrupt_nfa () =
  let alphabet = Automata.Cset.of_string "ab" in
  is_error "transition target out of range"
    (Nfa.validate
       (Nfa.unsafe_create ~nstates:2 ~alphabet ~initial:[ 0 ] ~final:[ 1 ]
          ~trans:[ (0, Nfa.Ch 'a', 5) ]));
  is_error "initial state out of range"
    (Nfa.validate
       (Nfa.unsafe_create ~nstates:2 ~alphabet ~initial:[ -1 ] ~final:[ 1 ] ~trans:[]));
  is_error "letter outside the alphabet"
    (Nfa.validate
       (Nfa.unsafe_create ~nstates:2 ~alphabet ~initial:[ 0 ] ~final:[ 1 ]
          ~trans:[ (0, Nfa.Ch 'z', 1) ]))

let test_corrupt_dfa () =
  is_error "unsorted alphabet"
    (Dfa.validate
       (Dfa.unsafe_create ~nstates:1 ~alpha:[| 'b'; 'a' |] ~init:0 ~final:[| false |]
          ~delta:[| [| 0; 0 |] |]));
  is_error "non-total row"
    (Dfa.validate
       (Dfa.unsafe_create ~nstates:2 ~alpha:[| 'a' |] ~init:0 ~final:[| false; true |]
          ~delta:[| [| 1 |]; [||] |]));
  is_error "unreachable state"
    (Dfa.validate ~expect_reachable:true
       (Dfa.unsafe_create ~nstates:2 ~alpha:[| 'a' |] ~init:0 ~final:[| false; true |]
          ~delta:[| [| 0 |]; [| 1 |] |]))

let test_corrupt_network () =
  let net = Net.create () in
  let a = Net.add_vertex net and b = Net.add_vertex net in
  ignore (Net.unsafe_add_edge net ~src:a ~dst:b (Net.Finite (-3)));
  is_error "negative capacity" (Net.validate net);
  let net2 = Net.create () in
  let s = Net.add_vertex net2 and t = Net.add_vertex net2 in
  let e = Net.add_edge net2 ~src:s ~dst:t (Net.Finite 4) in
  is_error "flow exceeding capacity"
    (Net.validate_flow net2 ~source:s ~sink:t ~flow:[| 7 |] ~value:7);
  is_error "flow/value mismatch"
    (Net.validate_flow net2 ~source:s ~sink:t ~flow:[| 3 |] ~value:2);
  is_error "cut value mismatch"
    (Net.validate_cut net2 ~source:s ~sink:t { Net.value = Net.Finite 3; edges = [ e ] });
  is_error "cut not disconnecting"
    (Net.validate_cut net2 ~source:s ~sink:t { Net.value = Net.Finite 0; edges = [] })

let test_corrupt_db () =
  is_error "multiplicity below one"
    (Db.validate (Db.unsafe_make_bag ~nnodes:2 ~facts:[ (0, 'a', 1, 0) ]));
  is_error "node out of range"
    (Db.validate (Db.unsafe_make_bag ~nnodes:2 ~facts:[ (0, 'a', 9, 1) ]));
  is_error "unmerged duplicate facts"
    (Db.validate (Db.unsafe_make_bag ~nnodes:2 ~facts:[ (0, 'a', 1, 1); (0, 'a', 1, 2) ]))

let test_corrupt_hypergraph () =
  is_error "undeclared vertex"
    (Hypergraph.validate
       (Hypergraph.unsafe_make ~vertices:[ 0; 1 ] ~edges:[ [ 0; 7 ] ]));
  is_error "duplicate edge"
    (Hypergraph.validate
       (Hypergraph.unsafe_make ~vertices:[ 0; 1; 2 ] ~edges:[ [ 0; 1 ]; [ 1; 0 ] ]))

let test_corrupt_simplex () =
  is_error "dimension mismatch"
    (Lp.Simplex.validate_problem
       {
         Lp.Simplex.ncols = 2;
         objective = [| 1.0 |];
         rows = [ ([| 1.0; 1.0 |], 1.0) ];
         upper = [| None; None |];
       });
  is_error "non-finite coefficient"
    (Lp.Simplex.validate_problem
       {
         Lp.Simplex.ncols = 1;
         objective = [| Float.nan |];
         rows = [];
         upper = [| None |];
       })

(* ---- paranoid mode: same answers, just slower ---- *)

let prop_paranoid_same_answers =
  let langs = [ "ax*b"; "ab|bc"; "abc|be"; "aa"; "a*"; "abc" ] in
  QCheck.Test.make ~name:"paranoid Check mode does not change solver answers" ~count:60
    (QCheck.pair (arb_db ~max_facts:8 ()) (QCheck.oneofl langs))
    (fun (d, l) ->
      let a = Automata.Lang.of_string l in
      let off = Check.with_level Check.Off (fun () -> Solver.resilience d a) in
      let paranoid = Check.with_level Check.Paranoid (fun () -> Solver.resilience d a) in
      check (Printf.sprintf "%s under paranoid" l) true (Value.equal off paranoid);
      true)

let prop_paranoid_st_resilience =
  QCheck.Test.make ~name:"paranoid Check mode: st-resilience unchanged" ~count:40
    (arb_db ~max_facts:8 ()) (fun d ->
      let a = Automata.Lang.of_string "ax*b" in
      let src = 0 and dst = Db.nnodes d - 1 in
      let off = Check.with_level Check.Off (fun () -> St_resilience.resilience d a ~src ~dst) in
      let paranoid =
        Check.with_level Check.Paranoid (fun () -> St_resilience.resilience d a ~src ~dst)
      in
      check "st under paranoid" true (Value.equal off paranoid);
      true)

let () =
  Alcotest.run "invariants"
    [
      ( "validate accepts",
        [
          qcheck prop_nfa_validates;
          qcheck prop_db_validates;
          qcheck prop_network_validates;
          Alcotest.test_case "hypergraph" `Quick test_hypergraph_validate;
          Alcotest.test_case "simplex" `Quick test_simplex_validate;
          Alcotest.test_case "submodular" `Quick test_submodular_validate;
        ] );
      ( "validate rejects corruption",
        [
          Alcotest.test_case "nfa" `Quick test_corrupt_nfa;
          Alcotest.test_case "dfa" `Quick test_corrupt_dfa;
          Alcotest.test_case "network" `Quick test_corrupt_network;
          Alcotest.test_case "db" `Quick test_corrupt_db;
          Alcotest.test_case "hypergraph" `Quick test_corrupt_hypergraph;
          Alcotest.test_case "simplex" `Quick test_corrupt_simplex;
        ] );
      ( "paranoid mode",
        [ qcheck prop_paranoid_same_answers; qcheck prop_paranoid_st_resilience ] );
    ]
