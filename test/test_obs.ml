(* lib/obs: span nesting and ordering, sink well-formedness (parsed back
   with the runner's strict JSON reader — Jtext's emit half and Proto's
   parse half must agree), histogram percentiles against a brute-force
   sort, and determinism of the work counters under seeded faults. *)

open Resilience
module Json = Runner.Proto.Json
module Trace = Obs.Trace
module Metrics = Obs.Metrics

let check = Alcotest.(check bool)

let with_trace fmt ext f =
  let path = Filename.temp_file "rpq_trace" ext in
  Fun.protect
    ~finally:(fun () ->
      Trace.finish ();
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Trace.configure ~format:fmt path;
      f path)

let read_file path = In_channel.with_open_text path In_channel.input_all

let parse_exn what s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "%s does not parse: %s (input %S)" what e s

let str_field f v =
  match Option.bind (Json.member f v) Json.to_str_opt with
  | Some s -> s
  | None -> Alcotest.failf "event lacks string field %S" f

let num_field f v =
  match Option.bind (Json.member f v) Json.to_float_opt with
  | Some x -> x
  | None -> Alcotest.failf "event lacks numeric field %S" f

let int_field f v =
  match Option.bind (Json.member f v) Json.to_int_opt with
  | Some x -> x
  | None -> Alcotest.failf "event lacks int field %S" f

let emit_nested () =
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner1" (fun () -> ignore (Sys.opaque_identity 1));
      Trace.instant "mark";
      Trace.with_span "inner2" (fun () ->
          Trace.with_span "leaf" (fun () -> ignore (Sys.opaque_identity 2))))

(* Spans are emitted on close: children must precede their parents, every
   event carries its depth, and a child's [ts, ts+dur] interval lies
   inside its parent's. *)
let test_jsonl_nesting () =
  with_trace Trace.Jsonl ".jsonl" (fun path ->
      emit_nested ();
      Trace.finish ();
      let lines =
        String.split_on_char '\n' (read_file path) |> List.filter (fun l -> String.trim l <> "")
      in
      let all = List.map (parse_exn "jsonl line") lines in
      (* The stream opens with exactly one meta record carrying the
         absolute epoch and the trace id. *)
      (match all with
      | meta :: _ ->
          Alcotest.(check string) "first record is meta" "meta" (str_field "ev" meta);
          check "meta has epoch" true (num_field "t0" meta > 0.0);
          check "meta has trace id" true (str_field "tid" meta <> "")
      | [] -> Alcotest.fail "empty trace");
      Alcotest.(check int)
        "one meta record" 1
        (List.length (List.filter (fun v -> str_field "ev" v = "meta") all));
      let events = List.filter (fun v -> str_field "ev" v <> "meta") all in
      let names = List.map (str_field "name") events in
      Alcotest.(check (list string))
        "close order (children first)"
        [ "inner1"; "mark"; "inner2"; "outer" ]
        (List.filter (fun n -> n <> "leaf") names);
      let spans = List.filter (fun v -> str_field "ev" v = "span") events in
      Alcotest.(check int) "span count" 4 (List.length spans);
      let interval v = (num_field "ts" v, num_field "ts" v +. num_field "dur" v) in
      let by_name n = List.find (fun v -> str_field "name" v = n) spans in
      List.iter
        (fun (child, parent) ->
          let c0, c1 = interval (by_name child) and p0, p1 = interval (by_name parent) in
          check (child ^ " inside " ^ parent) true (p0 <= c0 && c1 <= p1);
          Alcotest.(check int)
            (child ^ " depth")
            (int_field "depth" (by_name parent) + 1)
            (int_field "depth" (by_name child)))
        [ ("inner1", "outer"); ("inner2", "outer"); ("leaf", "inner2") ])

(* The Chrome sink must produce one well-formed JSON array of complete
   ("ph":"X") events with microsecond timestamps and the depth tag. *)
let test_chrome_sink () =
  with_trace Trace.Chrome ".json" (fun path ->
      emit_nested ();
      Trace.finish ();
      match parse_exn "chrome trace" (read_file path) with
      | Json.List events ->
          let spans =
            List.filter (fun v -> str_field "ph" v = "X") events
          in
          Alcotest.(check int) "span count" 4 (List.length spans);
          List.iter
            (fun v ->
              check "has name" true (str_field "name" v <> "");
              check "dur >= 0" true (num_field "dur" v >= 0.0);
              let args =
                match Json.member "args" v with
                | Some a -> a
                | None -> Alcotest.failf "event lacks args"
              in
              check "depth tag" true (int_field "depth" args >= 0))
            spans
      | _ -> Alcotest.fail "a Chrome trace must be one JSON array")

(* Stage accounting: only the outermost stage accumulates, so the totals
   sum to at most the enclosing wall time even when stages nest. *)
let test_stage_accounting () =
  let (), totals =
    Trace.with_stages (fun () ->
        Trace.stage "alpha" (fun () ->
            Trace.stage "beta" (fun () -> ignore (Sys.opaque_identity 1)));
        Trace.stage "beta" (fun () -> ignore (Sys.opaque_identity 2)))
  in
  let names = List.map fst totals in
  Alcotest.(check (list string)) "stage names, sorted" [ "alpha"; "beta" ] names;
  List.iter (fun (n, t) -> check (n ^ " nonnegative") true (t >= 0.0)) totals

let test_snapshot_roundtrip () =
  Metrics.reset ();
  let c = Metrics.counter "test.obs.counter" in
  let g = Metrics.gauge "test.obs.gauge" in
  let h = Metrics.histogram "test.obs.hist" in
  Metrics.add c 41;
  Metrics.incr c;
  Metrics.set g 2.5;
  Metrics.observe h 0.125;
  let v = parse_exn "metrics snapshot" (Metrics.snapshot_string ()) in
  Alcotest.(check int) "counter value" 42 (int_field "test.obs.counter" v);
  check "gauge value" true (num_field "test.obs.gauge" v = 2.5);
  (match Json.member "test.obs.hist" v with
  | Some hist -> Alcotest.(check int) "histogram count" 1 (int_field "count" hist)
  | None -> Alcotest.fail "histogram missing from snapshot");
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes, keeps the object" 0 (Metrics.count c)

(* Percentiles from the log-scale buckets against a brute-force sort: the
   bucket base is 2^(1/4), so a reported percentile is within ~19% of the
   true order statistic. Samples come from a deterministic LCG. *)
let test_histogram_percentiles () =
  Metrics.reset ();
  let h = Metrics.histogram "test.obs.lcg" in
  let state = ref 123456789 in
  let rand () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (* spread over ~6 orders of magnitude to exercise many buckets *)
    1e-6 *. float_of_int (1 + (!state mod 999_999))
  in
  let n = 2000 in
  let xs = Array.init n (fun _ -> rand ()) in
  Array.iter (Metrics.observe h) xs;
  Alcotest.(check int) "observations" n (Metrics.observations h);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      let est = Metrics.percentile h q in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
      let truth = sorted.(rank - 1) in
      let rel = Float.abs (est -. truth) /. truth in
      check (Printf.sprintf "q=%.2f within 19%% (est %g, true %g)" q est truth) true (rel <= 0.19))
    [ 0.01; 0.25; 0.5; 0.9; 0.99; 1.0 ];
  check "p0 clamped to min" true (Metrics.percentile h 0.0 >= sorted.(0));
  check "p100 clamped to max" true (Metrics.percentile h 1.0 <= sorted.(n - 1))

(* Work counters (budget ticks, B&B nodes, pivots, oracle calls) must be
   deterministic: two identical budgeted solves under the same seeded
   fault plan produce identical counter snapshots. Only time-valued
   metrics (gauges, histograms) may differ between runs. *)
let counters_only () =
  List.filter_map
    (function n, Metrics.Counter c -> Some (n, c) | _, (Metrics.Gauge _ | Metrics.Histogram _) -> None)
    (Metrics.snapshot ())

let test_counter_determinism () =
  let pre, l = Gadgets.gadget_aa () in
  let db = Gadgets.encode pre (Graphs.Ugraph.complete 4) in
  let run () =
    Metrics.reset ();
    Faults.with_plan
      (Faults.Seeded { seed = 7; period = 200 })
      (fun () ->
        let b = Budget.create ~steps:3_000 () in
        ignore (Solver.solve_bounded ~budget:b db l));
    counters_only ()
  in
  let first = run () in
  let second = run () in
  check "some work was counted" true (List.exists (fun (_, n) -> n > 0) first);
  Alcotest.(check (list (pair string int))) "counters match across identical runs" first second

(* ---- span context and cross-process identity ---- *)

let test_ctx_roundtrip () =
  let cases =
    [
      { Trace.trace_id = "0a1b2c"; span_id = "4d2.7"; sampled = true };
      { Trace.trace_id = "x"; span_id = "y"; sampled = false };
    ]
  in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        "ctx roundtrips" true
        (Trace.ctx_of_string (Trace.ctx_to_string c) = Some c))
    cases;
  check "garbage rejected" true (Trace.ctx_of_string "nope" = None);
  check "bad flag rejected" true (Trace.ctx_of_string "a:b:2" = None);
  check "empty rejected" true (Trace.ctx_of_string "" = None)

let jsonl_events path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (parse_exn "jsonl line")

(* Every span carries its identity (tid/sid/psid): a child's psid is its
   parent's sid, and every event shares the meta record's trace id. *)
let test_span_identity () =
  with_trace Trace.Jsonl ".jsonl" (fun path ->
      emit_nested ();
      Trace.finish ();
      let all = jsonl_events path in
      let tid = str_field "tid" (List.hd all) in
      let spans = List.filter (fun v -> str_field "ev" v = "span") all in
      List.iter (fun v -> Alcotest.(check string) "same trace id" tid (str_field "tid" v)) spans;
      let by_name n = List.find (fun v -> str_field "name" v = n) spans in
      List.iter
        (fun (child, parent) ->
          Alcotest.(check string)
            (child ^ " parented by " ^ parent)
            (str_field "sid" (by_name parent))
            (str_field "psid" (by_name child)))
        [ ("inner1", "outer"); ("inner2", "outer"); ("leaf", "inner2") ];
      check "root has no psid" true (Json.member "psid" (by_name "outer") = None))

(* A propagated remote parent: local root spans adopt its trace id and
   name it as psid; a cleared sampling bit suppresses emission. *)
let test_remote_parent () =
  with_trace Trace.Jsonl ".jsonl" (fun path ->
      let remote = { Trace.trace_id = "feed01"; span_id = "abc.1"; sampled = true } in
      Trace.with_parent (Some remote) (fun () -> Trace.with_span "adopted" ignore);
      let unsampled = { remote with Trace.sampled = false } in
      Trace.with_parent (Some unsampled) (fun () -> Trace.with_span "suppressed" ignore);
      Trace.finish ();
      let spans = List.filter (fun v -> str_field "ev" v = "span") (jsonl_events path) in
      Alcotest.(check int) "suppressed span not emitted" 1 (List.length spans);
      let s = List.hd spans in
      Alcotest.(check string) "adopted name" "adopted" (str_field "name" s);
      Alcotest.(check string) "adopted trace id" "feed01" (str_field "tid" s);
      Alcotest.(check string) "remote parent as psid" "abc.1" (str_field "psid" s))

(* A manual span handle survives across event-loop turns: its context is
   available before it closes, and closing is idempotent. *)
let test_manual_span () =
  with_trace Trace.Jsonl ".jsonl" (fun path ->
      let h =
        match Trace.open_span "job" with
        | Some h -> h
        | None -> Alcotest.fail "open_span with a sink must yield a handle"
      in
      let ctx = Trace.handle_ctx h in
      check "handle has a span id" true (ctx.Trace.span_id <> "");
      Trace.close_span ~args:[ ("outcome", Obs.Jtext.Str "exact") ] h;
      Trace.close_span h;
      Trace.finish ();
      let spans = List.filter (fun v -> str_field "ev" v = "span") (jsonl_events path) in
      Alcotest.(check int) "close_span is idempotent" 1 (List.length spans);
      Alcotest.(check string)
        "handle ctx names the span"
        ctx.Trace.span_id
        (str_field "sid" (List.hd spans)))

(* ---- structured logging ---- *)

let with_log_file f =
  let path = Filename.temp_file "rpq_log" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.close_file ();
      Obs.Log.set_level (Some Obs.Log.Warn);
      Obs.Log.reset_repeats ();
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Obs.Log.set_file path;
      f path)

let log_lines path =
  Obs.Log.close_file ();
  String.split_on_char '\n' (read_file path) |> List.filter (fun l -> String.trim l <> "")

let test_log_levels () =
  with_log_file (fun path ->
      Obs.Log.set_level (Some Obs.Log.Warn);
      Obs.Log.debug "below" [];
      Obs.Log.info "below" [];
      Obs.Log.warn "at" [ ("k", Obs.Jtext.Int 1) ];
      Obs.Log.error "above" [];
      let lines = log_lines path in
      Alcotest.(check int) "threshold filters" 2 (List.length lines);
      let v = parse_exn "log line" (List.hd lines) in
      Alcotest.(check string) "level tag" "warn" (str_field "lvl" v);
      Alcotest.(check string) "reason code" "at" (str_field "event" v);
      Alcotest.(check int) "context field" 1 (int_field "k" v);
      check "timestamp present" true (num_field "ts" v > 0.0))

(* Count-based repeat suppression: of 20 identical events, occurrences
   1-4 pass, then only powers of two (8, 16) — deterministically. *)
let test_log_rate_limit () =
  with_log_file (fun path ->
      Obs.Log.set_level (Some Obs.Log.Warn);
      Obs.Log.reset_repeats ();
      for _ = 1 to 20 do
        Obs.Log.warn "noisy" []
      done;
      Obs.Log.warn "other" [];
      let lines = log_lines path in
      let events = List.map (parse_exn "log line") lines in
      let noisy = List.filter (fun v -> str_field "event" v = "noisy") events in
      Alcotest.(check int) "4 + {8,16} emitted" 6 (List.length noisy);
      let repeats = List.filter_map (fun v -> Json.member "repeat" v) noisy in
      Alcotest.(check int) "suppression tagged" 2 (List.length repeats);
      Alcotest.(check int)
        "distinct reason codes tracked separately" 1
        (List.length (List.filter (fun v -> str_field "event" v = "other") events)))

(* ---- flight recorder ---- *)

let test_flight_dump () =
  let path = Filename.temp_file "rpq_flight" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Flight.disable ();
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Obs.Flight.configure ~cap:4 path;
      check "armed" true (Obs.Flight.enabled ());
      for i = 1 to 6 do
        Obs.Flight.note (Obs.Jtext.Obj [ ("n", Obs.Jtext.Int i) ])
      done;
      Obs.Flight.dump ~reason:"test:boom" ();
      let v = parse_exn "flight dump" (read_file path) in
      Alcotest.(check int) "schema version" 1 (int_field "v" v);
      Alcotest.(check string) "reason" "test:boom" (str_field "reason" v);
      Alcotest.(check int) "dropped = overflow" 2 (int_field "dropped" v);
      (match Json.member "events" v with
      | Some (Json.List evs) ->
          Alcotest.(check int) "ring keeps the newest cap events" 4 (List.length evs);
          Alcotest.(check (list int))
            "oldest to newest" [ 3; 4; 5; 6 ]
            (List.map (int_field "n") evs)
      | _ -> Alcotest.fail "dump lacks events array");
      check "metrics snapshot attached" true (Json.member "metrics" v <> None))

(* Log records land in the flight ring even below the emission
   threshold: the black box sees what stderr does not. *)
let test_flight_sees_suppressed_logs () =
  let path = Filename.temp_file "rpq_flight" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Flight.disable ();
      Obs.Log.set_level (Some Obs.Log.Warn);
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Obs.Flight.configure ~cap:8 path;
      Obs.Log.set_level (Some Obs.Log.Error);
      Obs.Log.reset_repeats ();
      Obs.Log.debug "quiet-event" [ ("marker", Obs.Jtext.Int 99) ];
      Obs.Flight.dump ~reason:"test" ();
      let v = parse_exn "flight dump" (read_file path) in
      match Json.member "events" v with
      | Some (Json.List evs) ->
          check "suppressed log noted" true
            (List.exists
               (fun e ->
                 match Option.bind (Json.member "event" e) Json.to_str_opt with
                 | Some "quiet-event" -> true
                 | _ -> false)
               evs)
      | _ -> Alcotest.fail "dump lacks events array")

(* ---- Prometheus exposition ---- *)

let test_prometheus_exposition () =
  Metrics.reset ();
  let c1 = Metrics.counter "test.prom.zeta" in
  let c2 = Metrics.counter "test.prom.alpha" in
  let g = Metrics.gauge "test.prom.gauge" in
  let h = Metrics.histogram "test.prom.hist_s" in
  Metrics.add c1 7;
  Metrics.incr c2;
  Metrics.set g 1.5;
  Metrics.observe h 0.25;
  Metrics.observe h 0.5;
  let text = Metrics.prometheus_string () in
  let again = Metrics.prometheus_string () in
  Alcotest.(check string) "render is deterministic" text again;
  let lines = String.split_on_char '\n' text in
  let has_line l = List.mem l lines in
  check "counter sample" true (has_line "rpq_test_prom_zeta 7");
  check "counter type" true (has_line "# TYPE rpq_test_prom_zeta counter");
  check "gauge sample" true (has_line "rpq_test_prom_gauge 1.5");
  check "histogram count" true (has_line "rpq_test_prom_hist_s_count 2");
  check "histogram sum" true (has_line "rpq_test_prom_hist_s_sum 0.75");
  (* Families appear in sorted metric-name order. *)
  let family_names =
    List.filter_map
      (fun l ->
        match String.split_on_char ' ' l with
        | [ "#"; "TYPE"; name; _ ] -> Some name
        | _ -> None)
      lines
  in
  Alcotest.(check (list string))
    "families sorted" (List.sort compare family_names) family_names;
  (* The counters-only view drops the time-valued families. *)
  let counters = Metrics.prometheus_string ~only_counters:true () in
  let clines = String.split_on_char '\n' counters in
  check "counters-only keeps counters" true (List.mem "rpq_test_prom_zeta 7" clines);
  check "counters-only drops gauges" true
    (not (List.exists (String.starts_with ~prefix:"rpq_test_prom_gauge") clines));
  check "counters-only drops histograms" true
    (not (List.exists (String.starts_with ~prefix:"rpq_test_prom_hist") clines))

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "jsonl nesting and order" `Quick test_jsonl_nesting;
          Alcotest.test_case "chrome sink well-formed" `Quick test_chrome_sink;
          Alcotest.test_case "stage accounting" `Quick test_stage_accounting;
          Alcotest.test_case "span context roundtrip" `Quick test_ctx_roundtrip;
          Alcotest.test_case "span identity fields" `Quick test_span_identity;
          Alcotest.test_case "remote parent adoption" `Quick test_remote_parent;
          Alcotest.test_case "manual span handles" `Quick test_manual_span;
        ] );
      ( "log",
        [
          Alcotest.test_case "levels and structure" `Quick test_log_levels;
          Alcotest.test_case "repeat rate limiting" `Quick test_log_rate_limit;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring overflow and atomic dump" `Quick test_flight_dump;
          Alcotest.test_case "records suppressed log events" `Quick
            test_flight_sees_suppressed_logs;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "counter determinism under seeded faults" `Quick
            test_counter_determinism;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
        ] );
    ]
