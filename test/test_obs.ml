(* lib/obs: span nesting and ordering, sink well-formedness (parsed back
   with the runner's strict JSON reader — Jtext's emit half and Proto's
   parse half must agree), histogram percentiles against a brute-force
   sort, and determinism of the work counters under seeded faults. *)

open Resilience
module Json = Runner.Proto.Json
module Trace = Obs.Trace
module Metrics = Obs.Metrics

let check = Alcotest.(check bool)

let with_trace fmt ext f =
  let path = Filename.temp_file "rpq_trace" ext in
  Fun.protect
    ~finally:(fun () ->
      Trace.finish ();
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Trace.configure ~format:fmt path;
      f path)

let read_file path = In_channel.with_open_text path In_channel.input_all

let parse_exn what s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "%s does not parse: %s (input %S)" what e s

let str_field f v =
  match Option.bind (Json.member f v) Json.to_str_opt with
  | Some s -> s
  | None -> Alcotest.failf "event lacks string field %S" f

let num_field f v =
  match Option.bind (Json.member f v) Json.to_float_opt with
  | Some x -> x
  | None -> Alcotest.failf "event lacks numeric field %S" f

let int_field f v =
  match Option.bind (Json.member f v) Json.to_int_opt with
  | Some x -> x
  | None -> Alcotest.failf "event lacks int field %S" f

let emit_nested () =
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner1" (fun () -> ignore (Sys.opaque_identity 1));
      Trace.instant "mark";
      Trace.with_span "inner2" (fun () ->
          Trace.with_span "leaf" (fun () -> ignore (Sys.opaque_identity 2))))

(* Spans are emitted on close: children must precede their parents, every
   event carries its depth, and a child's [ts, ts+dur] interval lies
   inside its parent's. *)
let test_jsonl_nesting () =
  with_trace Trace.Jsonl ".jsonl" (fun path ->
      emit_nested ();
      Trace.finish ();
      let lines =
        String.split_on_char '\n' (read_file path) |> List.filter (fun l -> String.trim l <> "")
      in
      let events = List.map (parse_exn "jsonl line") lines in
      let names = List.map (str_field "name") events in
      Alcotest.(check (list string))
        "close order (children first)"
        [ "inner1"; "mark"; "inner2"; "outer" ]
        (List.filter (fun n -> n <> "leaf") names);
      let spans = List.filter (fun v -> str_field "ev" v = "span") events in
      Alcotest.(check int) "span count" 4 (List.length spans);
      let interval v = (num_field "ts" v, num_field "ts" v +. num_field "dur" v) in
      let by_name n = List.find (fun v -> str_field "name" v = n) spans in
      List.iter
        (fun (child, parent) ->
          let c0, c1 = interval (by_name child) and p0, p1 = interval (by_name parent) in
          check (child ^ " inside " ^ parent) true (p0 <= c0 && c1 <= p1);
          Alcotest.(check int)
            (child ^ " depth")
            (int_field "depth" (by_name parent) + 1)
            (int_field "depth" (by_name child)))
        [ ("inner1", "outer"); ("inner2", "outer"); ("leaf", "inner2") ])

(* The Chrome sink must produce one well-formed JSON array of complete
   ("ph":"X") events with microsecond timestamps and the depth tag. *)
let test_chrome_sink () =
  with_trace Trace.Chrome ".json" (fun path ->
      emit_nested ();
      Trace.finish ();
      match parse_exn "chrome trace" (read_file path) with
      | Json.List events ->
          let spans =
            List.filter (fun v -> str_field "ph" v = "X") events
          in
          Alcotest.(check int) "span count" 4 (List.length spans);
          List.iter
            (fun v ->
              check "has name" true (str_field "name" v <> "");
              check "dur >= 0" true (num_field "dur" v >= 0.0);
              let args =
                match Json.member "args" v with
                | Some a -> a
                | None -> Alcotest.failf "event lacks args"
              in
              check "depth tag" true (int_field "depth" args >= 0))
            spans
      | _ -> Alcotest.fail "a Chrome trace must be one JSON array")

(* Stage accounting: only the outermost stage accumulates, so the totals
   sum to at most the enclosing wall time even when stages nest. *)
let test_stage_accounting () =
  let (), totals =
    Trace.with_stages (fun () ->
        Trace.stage "alpha" (fun () ->
            Trace.stage "beta" (fun () -> ignore (Sys.opaque_identity 1)));
        Trace.stage "beta" (fun () -> ignore (Sys.opaque_identity 2)))
  in
  let names = List.map fst totals in
  Alcotest.(check (list string)) "stage names, sorted" [ "alpha"; "beta" ] names;
  List.iter (fun (n, t) -> check (n ^ " nonnegative") true (t >= 0.0)) totals

let test_snapshot_roundtrip () =
  Metrics.reset ();
  let c = Metrics.counter "test.obs.counter" in
  let g = Metrics.gauge "test.obs.gauge" in
  let h = Metrics.histogram "test.obs.hist" in
  Metrics.add c 41;
  Metrics.incr c;
  Metrics.set g 2.5;
  Metrics.observe h 0.125;
  let v = parse_exn "metrics snapshot" (Metrics.snapshot_string ()) in
  Alcotest.(check int) "counter value" 42 (int_field "test.obs.counter" v);
  check "gauge value" true (num_field "test.obs.gauge" v = 2.5);
  (match Json.member "test.obs.hist" v with
  | Some hist -> Alcotest.(check int) "histogram count" 1 (int_field "count" hist)
  | None -> Alcotest.fail "histogram missing from snapshot");
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes, keeps the object" 0 (Metrics.count c)

(* Percentiles from the log-scale buckets against a brute-force sort: the
   bucket base is 2^(1/4), so a reported percentile is within ~19% of the
   true order statistic. Samples come from a deterministic LCG. *)
let test_histogram_percentiles () =
  Metrics.reset ();
  let h = Metrics.histogram "test.obs.lcg" in
  let state = ref 123456789 in
  let rand () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    (* spread over ~6 orders of magnitude to exercise many buckets *)
    1e-6 *. float_of_int (1 + (!state mod 999_999))
  in
  let n = 2000 in
  let xs = Array.init n (fun _ -> rand ()) in
  Array.iter (Metrics.observe h) xs;
  Alcotest.(check int) "observations" n (Metrics.observations h);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  List.iter
    (fun q ->
      let est = Metrics.percentile h q in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
      let truth = sorted.(rank - 1) in
      let rel = Float.abs (est -. truth) /. truth in
      check (Printf.sprintf "q=%.2f within 19%% (est %g, true %g)" q est truth) true (rel <= 0.19))
    [ 0.01; 0.25; 0.5; 0.9; 0.99; 1.0 ];
  check "p0 clamped to min" true (Metrics.percentile h 0.0 >= sorted.(0));
  check "p100 clamped to max" true (Metrics.percentile h 1.0 <= sorted.(n - 1))

(* Work counters (budget ticks, B&B nodes, pivots, oracle calls) must be
   deterministic: two identical budgeted solves under the same seeded
   fault plan produce identical counter snapshots. Only time-valued
   metrics (gauges, histograms) may differ between runs. *)
let counters_only () =
  List.filter_map
    (function n, Metrics.Counter c -> Some (n, c) | _, (Metrics.Gauge _ | Metrics.Histogram _) -> None)
    (Metrics.snapshot ())

let test_counter_determinism () =
  let pre, l = Gadgets.gadget_aa () in
  let db = Gadgets.encode pre (Graphs.Ugraph.complete 4) in
  let run () =
    Metrics.reset ();
    Faults.with_plan
      (Faults.Seeded { seed = 7; period = 200 })
      (fun () ->
        let b = Budget.create ~steps:3_000 () in
        ignore (Solver.solve_bounded ~budget:b db l));
    counters_only ()
  in
  let first = run () in
  let second = run () in
  check "some work was counted" true (List.exists (fun (_, n) -> n > 0) first);
  Alcotest.(check (list (pair string int))) "counters match across identical runs" first second

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "jsonl nesting and order" `Quick test_jsonl_nesting;
          Alcotest.test_case "chrome sink well-formed" `Quick test_chrome_sink;
          Alcotest.test_case "stage accounting" `Quick test_stage_accounting;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "counter determinism under seeded faults" `Quick
            test_counter_determinism;
        ] );
    ]
