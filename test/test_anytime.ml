(* Tests for the anytime solver engine: budgets, certified bounds, and
   deterministic fault injection.

   Tests that assert a *specific* exhaustion reason (or none) pin the fault
   plan with [Faults.with_plan]: CI runs the whole suite under RPQ_FAULTS
   sweeps, and an ambient seeded plan would otherwise fire first. *)
open Resilience
module Db = Graphdb.Db

let lang = Automata.Lang.of_string
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let vcheck name expected got =
  Alcotest.check (Alcotest.testable Value.pp Value.equal) name expected got

(* A database hard enough that every solver stage performs many ticks: the
   vertex-cover encoding of K4 under the `aa` gadget (resilience 15). *)
let k4_db () =
  let pre, _ = Gadgets.gadget_aa () in
  Gadgets.encode pre (Graphs.Ugraph.complete 4)

(* ---- Faults ---- *)

let test_faults_parse () =
  check "off" true (Faults.parse "off" = Ok Faults.Off);
  check "tick" true (Faults.parse "tick:7" = Ok (Faults.At_tick 7));
  check "seed" true (Faults.parse "seed:3" = Ok (Faults.Seeded { seed = 3; period = 1000 }));
  check "seed+period" true
    (Faults.parse "seed:3:50" = Ok (Faults.Seeded { seed = 3; period = 50 }));
  check "tick 0 rejected" true (Result.is_error (Faults.parse "tick:0"));
  check "garbage rejected" true (Result.is_error (Faults.parse "everything on fire"));
  List.iter
    (fun p -> check (Faults.to_string p) true (Faults.parse (Faults.to_string p) = Ok p))
    [
      Faults.Off;
      Faults.At_tick 12;
      Faults.Seeded { seed = 99; period = 10 };
      Faults.Kill_after 3;
      Faults.Wedge_after 10;
      Faults.Crash_at { site = "journal.pre_append"; hits = 2 };
    ]

let test_faults_crash_spec () =
  check "crash spec" true
    (Faults.parse "crash:journal.mid_compact:3"
    = Ok (Faults.Crash_at { site = "journal.mid_compact"; hits = 3 }));
  (* Every site the chaos harness draws from must be well-formed. *)
  List.iter
    (fun site ->
      check ("site parses: " ^ site) true
        (Faults.parse (Printf.sprintf "crash:%s:1" site)
        = Ok (Faults.Crash_at { site; hits = 1 })))
    Faults.crash_sites;
  List.iter
    (fun s -> check (s ^ " rejected") true (Result.is_error (Faults.parse s)))
    [
      "crash";
      "crash:";
      "crash:site";
      "crash:site:";
      "crash:site:0";
      "crash:site:2x";
      "crash:site:2:3";
      "crash::2";
      "crash:si te:2";
    ];
  (* The grammar is case-insensitive (like every other spec): uppercase
     normalizes to the lowercase site rather than silently never firing. *)
  check "crash spec case-normalizes" true
    (Faults.parse "crash:Journal.Pre_Append:2"
    = Ok (Faults.Crash_at { site = "journal.pre_append"; hits = 2 }));
  (* Counting: the armed site is a no-op until the Nth visit, other sites
     never fire, and with_plan scopes the hit counters. *)
  Faults.with_plan (Faults.Crash_at { site = "a.b"; hits = 2 }) (fun () ->
      Faults.crash_site "a.b";
      Faults.crash_site "other.site";
      (match Faults.crash_site "a.b" with
      | () -> check "second visit crashes" true false
      | exception Faults.Crash site -> check "crash payload is the site" true (site = "a.b"));
      (* Crash plans touch neither budgets nor workers. *)
      check "no budget fault under crash plan" true (Faults.next_fault_tick () = None);
      check "no worker mode under crash plan" true (Faults.worker_mode () = None));
  (* Back outside the plan: the site is disarmed again. *)
  Faults.crash_site "a.b";
  (* Nested with_plan restores the outer plan's counter position. *)
  Faults.with_plan (Faults.Crash_at { site = "x"; hits = 2 }) (fun () ->
      Faults.crash_site "x";
      Faults.with_plan (Faults.Crash_at { site = "x"; hits = 2 }) (fun () ->
          Faults.crash_site "x" (* inner counter starts fresh: visit 1 of 2 *));
      match Faults.crash_site "x" with
      | () -> check "outer counter resumed" true false
      | exception Faults.Crash _ -> check "outer counter resumed" true true)

let test_faults_net_spec () =
  (* Every site the transport exercises must be well-formed, and the
     site list is closed: a period that never fires is indistinguishable
     from a healthy run, so unknown sites are parse errors, not no-ops. *)
  List.iter
    (fun site ->
      let spec = Printf.sprintf "net:%s:3" site in
      check ("site parses: " ^ site) true
        (Faults.parse spec = Ok (Faults.Net_at { site; period = 3 }));
      let p = Faults.Net_at { site; period = 7 } in
      check ("roundtrip: " ^ site) true (Faults.parse (Faults.to_string p) = Ok p))
    Faults.net_sites;
  List.iter
    (fun s -> check (s ^ " rejected") true (Result.is_error (Faults.parse s)))
    [
      "net";
      "net:";
      "net:accept_fail";
      "net:accept_fail:";
      "net:accept_fail:0";
      "net:accept_fail:2x";
      "net:accept_fail:2:3";
      "net:bogus_site:3";
      "net::2";
    ];
  check "net spec case-normalizes" true
    (Faults.parse "net:Client_Drop:2" = Ok (Faults.Net_at { site = "client_drop"; period = 2 }));
  (* Periodicity: every period-th visit of the armed site fires; other
     sites never do, and budgets/workers are untouched. *)
  Faults.with_plan (Faults.Net_at { site = "partial_write"; period = 2 }) (fun () ->
      let fires =
        List.init 6 (fun _ -> Faults.net_site "partial_write")
        |> List.filter Fun.id |> List.length
      in
      check "every 2nd visit fires" true (fires = 3);
      check "other sites never fire" false (Faults.net_site "client_drop");
      check "no budget fault under net plan" true (Faults.next_fault_tick () = None);
      check "no worker mode under net plan" true (Faults.worker_mode () = None));
  (* Outside the plan the site is disarmed. *)
  check "disarmed outside with_plan" false (Faults.net_site "partial_write")

(* Numbers in fault specs are plain decimals and nothing may trail them:
   OCaml's [int_of_string] would otherwise quietly accept hex forms and
   [_] separators, and a typo like [tick:5x] must not run as [tick:5]. *)
let test_faults_parse_strict () =
  check "kill" true (Faults.parse "kill:3" = Ok (Faults.Kill_after 3));
  check "wedge" true (Faults.parse "wedge:10" = Ok (Faults.Wedge_after 10));
  List.iter
    (fun s -> check (s ^ " rejected") true (Result.is_error (Faults.parse s)))
    [
      "tick:5x";
      "tick:5_";
      "tick:0x5";
      "tick:5.0";
      "tick:+5";
      "tick:-5";
      "tick:";
      "tick";
      "tick:5:9";
      "seed:7:200:9";
      "seed:7x";
      "seed:7:2_0";
      "seed:";
      "kill:0";
      "kill:3x";
      "kill";
      "wedge:0";
      "wedge:10garbage";
      "off:1";
    ];
  (* Errors must name the grammar so an RPQ_FAULTS typo is self-explaining. *)
  (match Faults.parse "tick:5x" with
  | Error msg ->
      check "error mentions the spec" true
        (String.length msg > 0
        &&
        let has_sub sub =
          let n = String.length msg and m = String.length sub in
          let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
          go 0
        in
        has_sub "tick:5x" || has_sub "tick:N")
  | Ok _ -> check "tick:5x must not parse" true false);
  (* Worker-fault plans never inject budget exhaustion... *)
  Faults.with_plan (Faults.Kill_after 3) (fun () ->
      check "kill injects no budget fault" true (Faults.next_fault_tick () = None);
      check "kill worker mode" true (Faults.worker_mode () = Some (`Kill 3)));
  Faults.with_plan (Faults.Wedge_after 7) (fun () ->
      check "wedge injects no budget fault" true (Faults.next_fault_tick () = None);
      check "wedge worker mode" true (Faults.worker_mode () = Some (`Wedge 7)));
  (* ...and budget-fault plans have no worker mode. *)
  Faults.with_plan (Faults.At_tick 5) (fun () ->
      check "tick has no worker mode" true (Faults.worker_mode () = None));
  Faults.with_plan Faults.Off (fun () ->
      check "off has no worker mode" true (Faults.worker_mode () = None))

let test_faults_stream () =
  Faults.with_plan Faults.Off (fun () ->
      check "off yields none" true (Faults.next_fault_tick () = None));
  Faults.with_plan (Faults.At_tick 5) (fun () ->
      check "tick plan" true (Faults.next_fault_tick () = Some 5);
      check "tick plan repeats" true (Faults.next_fault_tick () = Some 5));
  let draws plan n =
    Faults.with_plan plan (fun () -> List.init n (fun _ -> Faults.next_fault_tick ()))
  in
  let p = Faults.Seeded { seed = 42; period = 100 } in
  check "seeded deterministic" true (draws p 20 = draws p 20);
  check "seeded in range" true
    (List.for_all (function Some t -> t >= 1 && t <= 100 | None -> false) (draws p 50));
  check "seeded varies" true (List.sort_uniq compare (draws p 50) |> List.length > 1)

(* ---- Budget ---- *)

let test_budget_steps () =
  Faults.with_plan Faults.Off (fun () ->
      let b = Budget.create ~steps:3 () in
      Budget.tick b;
      Budget.tick b;
      Budget.tick b;
      check "not yet" true (not (Budget.exhausted b));
      check "4th tick raises" true
        (try
           Budget.tick b;
           false
         with Budget.Exhausted Budget.Steps -> true);
      check "sticky" true
        (try
           Budget.tick b;
           false
         with Budget.Exhausted Budget.Steps -> true);
      check "recorded" true (Budget.exhaustion b = Some Budget.Steps))

let test_budget_unlimited () =
  (* even under an aggressive fault plan, unlimited budgets never fault *)
  Faults.with_plan (Faults.At_tick 1) (fun () ->
      let b = Budget.unlimited () in
      for _ = 1 to 10_000 do
        Budget.tick b
      done;
      check "unlimited survives" true (not (Budget.exhausted b)))

let test_budget_slice () =
  Faults.with_plan Faults.Off (fun () ->
      let parent = Budget.create ~steps:100 () in
      let child = Budget.slice parent ~deadline_frac:0.5 ~steps_frac:0.5 in
      (* child ticks count against the parent too *)
      for _ = 1 to 50 do
        Budget.tick child
      done;
      check_int "parent charged" 50 (Budget.spent parent).Budget.steps;
      check "child capped at its fraction" true
        (try
           Budget.tick child;
           false
         with Budget.Exhausted Budget.Steps -> true);
      (* the parent itself still has room *)
      Budget.tick parent;
      check "parent alive" true (not (Budget.exhausted parent)))

let test_budget_memory () =
  let b = Budget.create ~memo_cap:2 () in
  check "admit below cap" true (Budget.memo_admit b 1);
  check "refuse at cap" true (not (Budget.memo_admit b 2));
  check "charge ok" true
    (try
       Budget.charge_memory b 2;
       true
     with Budget.Exhausted _ -> false);
  check "charge over cap" true
    (try
       Budget.charge_memory b 3;
       false
     with Budget.Exhausted Budget.Memory -> true)

let test_budget_validation () =
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "negative steps" true (rejects (fun () -> Budget.create ~steps:(-1) ()));
  check "nan deadline" true (rejects (fun () -> Budget.create ~deadline:Float.nan ()));
  check "negative deadline" true (rejects (fun () -> Budget.create ~deadline:(-1.0) ()));
  check "bad fraction" true
    (rejects (fun () ->
         Budget.slice (Budget.unlimited ()) ~deadline_frac:0.0 ~steps_frac:0.5))

(* ---- Exact solvers under budgets ---- *)

let test_bnb_exhausts () =
  Faults.with_plan Faults.Off (fun () ->
      let d = k4_db () in
      let l = lang "aa" in
      check "tiny step budget raises" true
        (try
           ignore (Exact.branch_and_bound ~budget:(Budget.create ~steps:5 ()) d l);
           false
         with Budget.Exhausted Budget.Steps -> true);
      (* the anytime variant converts exhaustion into a truncated outcome *)
      match Exact.branch_and_bound_anytime ~budget:(Budget.create ~steps:5 ()) d l with
      | Exact.Complete _ -> Alcotest.fail "5 steps cannot complete on K4"
      | Exact.Truncated { incumbent; reason } -> (
          check "reason" true (reason = Budget.Steps);
          (* when an incumbent exists it must be a real contingency set *)
          match incumbent with
          | None -> ()
          | Some (cost, set) ->
              let d' = Db.restrict d ~removed:(fun id -> List.mem id set) in
              check "incumbent falsifies" true (not (Graphdb.Eval.satisfies d' l));
              check_int "incumbent cost" cost
                (List.fold_left (fun a id -> a + Db.mult d id) 0 set)))

let test_memo_cap_still_exact () =
  (* a zero memo cap disables memoization entirely; the search must still
     terminate with the exact answer (satellite: bounded memo ⇒ no OOM,
     never a wrong value) *)
  Faults.with_plan Faults.Off (fun () ->
      let d = Db.make ~nnodes:5 ~facts:[ (0, 'a', 1); (1, 'a', 2); (2, 'a', 3); (3, 'a', 4) ] in
      let v, _ = Exact.branch_and_bound ~budget:(Budget.create ~memo_cap:0 ()) d (lang "aa") in
      vcheck "memo cap 0 stays exact" (Value.Finite 2) v)

let test_deadline_bounds () =
  Faults.with_plan Faults.Off (fun () ->
      let d = k4_db () in
      match Solver.solve_bounded ~budget:(Budget.create ~deadline:0.0 ()) d (lang "aa") with
      | Solver.Exact _ -> Alcotest.fail "zero deadline cannot complete on K4"
      | Solver.Bounded { lower; upper; reason; _ } ->
          check "reason is deadline" true (reason = Budget.Deadline);
          check "ordered" true (Value.compare lower upper <= 0))

(* ---- solve_bounded ---- *)

let arb_db ?(alphabet = [ 'a'; 'b'; 'c'; 'x' ]) ?(max_mult = 1) ~max_facts () =
  QCheck.make
    ~print:(fun (d : Db.t) -> Format.asprintf "%a" Db.pp d)
    QCheck.Gen.(
      let* seed = int_bound 1000000 in
      let* nnodes = int_range 2 5 in
      let* nfacts = int_range 1 max_facts in
      return (Graphdb.Generate.random ~nnodes ~nfacts ~alphabet ~max_mult ~seed ()))

let hard_langs = [ "aa"; "abc"; "ab|bc|ca"; "axb|cxd" ]

(* No budget: solve_bounded is exactly the seed solver, even under the most
   aggressive ambient fault plan (faults only attach to created budgets). *)
let prop_no_budget_is_exact =
  QCheck.Test.make ~name:"solve_bounded without budget = solve" ~count:100
    (QCheck.pair (arb_db ~max_mult:3 ~max_facts:8 ()) (QCheck.oneofl hard_langs))
    (fun (d, s) ->
      Faults.with_plan (Faults.At_tick 1) (fun () ->
          let l = lang s in
          match Solver.solve_bounded d l with
          | Solver.Exact r -> Value.equal r.Solver.value (Solver.solve d l).Solver.value
          | Solver.Bounded _ -> false))

(* The central anytime property: for *every* injected exhaustion point the
   outcome is either the exact answer or bounds that bracket it. *)
let bounded_ok d l outcome =
  let truth = Exact.bruteforce d l in
  match outcome with
  | Solver.Exact r -> Value.equal r.Solver.value truth
  | Solver.Bounded { lower; upper; upper_witness; _ } -> (
      Value.compare lower truth <= 0
      && Value.compare truth upper <= 0
      &&
      match upper_witness with
      | None -> true
      | Some w ->
          let d' = Db.restrict d ~removed:(fun id -> List.mem id w) in
          (not (Graphdb.Eval.satisfies d' l))
          && Value.equal upper (Value.Finite (List.fold_left (fun a id -> a + Db.mult d id) 0 w)))

let prop_fault_sweep_brackets =
  QCheck.Test.make ~name:"every fault tick: lower <= bruteforce <= upper" ~count:40
    (QCheck.pair (arb_db ~max_mult:2 ~max_facts:12 ()) (QCheck.oneofl hard_langs))
    (fun (d, s) ->
      let l = lang s in
      List.for_all
        (fun n ->
          Faults.with_plan (Faults.At_tick n) (fun () ->
              bounded_ok d l (Solver.solve_bounded ~budget:(Budget.create ()) d l)))
        [ 1; 2; 3; 5; 8; 13; 21; 34; 50; 200; 5000 ])

let prop_step_budget_brackets =
  QCheck.Test.make ~name:"every step budget: lower <= bruteforce <= upper" ~count:40
    (QCheck.pair (arb_db ~max_mult:2 ~max_facts:10 ()) (QCheck.oneofl hard_langs))
    (fun (d, s) ->
      let l = lang s in
      Faults.with_plan Faults.Off (fun () ->
          List.for_all
            (fun steps ->
              bounded_ok d l (Solver.solve_bounded ~budget:(Budget.create ~steps ()) d l))
            [ 1; 4; 16; 64; 256; 100_000 ]))

(* Seeded fault streams: reproducible, and every drawn exhaustion point
   still brackets the truth. *)
let prop_seeded_faults_bracket =
  QCheck.Test.make ~name:"seeded fault stream brackets the truth" ~count:30
    (QCheck.pair (arb_db ~max_mult:2 ~max_facts:10 ()) (QCheck.oneofl hard_langs))
    (fun (d, s) ->
      let l = lang s in
      Faults.with_plan
        (Faults.Seeded { seed = 1234; period = 300 })
        (fun () ->
          List.for_all
            (fun _ -> bounded_ok d l (Solver.solve_bounded ~budget:(Budget.create ()) d l))
            [ (); (); () ]))

let test_ample_budget_is_exact () =
  Faults.with_plan Faults.Off (fun () ->
      let d = Db.make ~nnodes:5 ~facts:[ (0, 'a', 1); (1, 'a', 2); (2, 'a', 3); (3, 'a', 4) ] in
      match Solver.solve_bounded ~budget:(Budget.create ~steps:1_000_000 ()) d (lang "aa") with
      | Solver.Exact r -> vcheck "exact under ample budget" (Value.Finite 2) r.Solver.value
      | Solver.Bounded _ -> Alcotest.fail "ample budget must complete")

let test_ptime_ignores_budget () =
  (* MinCut-solvable languages complete regardless of the budget *)
  Faults.with_plan (Faults.At_tick 1) (fun () ->
      let d = Graphdb.Generate.random ~nnodes:5 ~nfacts:8 ~alphabet:[ 'a'; 'b'; 'x' ] ~seed:3 () in
      match Solver.solve_bounded ~budget:(Budget.create ~steps:1 ()) d (lang "ax*b") with
      | Solver.Exact r -> check "local algorithm" true (r.Solver.algorithm = Solver.Alg_local_mincut)
      | Solver.Bounded _ -> Alcotest.fail "polynomial case must stay exact")

let test_ilp_stage_completes () =
  (* force stage 1 (branch and bound) to fail instantly but leave stage 2
     (ILP) enough budget: the outcome is exact via the ILP algorithm *)
  Faults.with_plan Faults.Off (fun () ->
      let d = k4_db () in
      (* K4 B&B needs ~30k ticks, far more than its 6k-step slice here; the
         ILP needs only a few hundred and fits its slice of the remainder. *)
      match Solver.solve_bounded ~budget:(Budget.create ~steps:10_000 ()) d (lang "aa") with
      | Solver.Exact r ->
          check "ilp algorithm" true (r.Solver.algorithm = Solver.Alg_ilp);
          vcheck "ilp value" (Value.Finite 15) r.Solver.value
      | Solver.Bounded _ -> Alcotest.fail "ILP stage should have completed on K4")

let test_bounds_informative () =
  (* with stages 1-2 exhausted but stage 3 still funded, the LP relaxation
     and the greedy hitting set must beat the trivial bounds 1 and Σmult *)
  Faults.with_plan Faults.Off (fun () ->
      let d = k4_db () in
      let total = List.fold_left (fun a (id, _) -> a + Db.mult d id) 0 (Db.facts d) in
      match Solver.solve_bounded ~budget:(Budget.create ~steps:2_000 ()) d (lang "aa") with
      | Solver.Exact _ -> Alcotest.fail "2000 steps cannot complete on K4"
      | Solver.Bounded { lower; upper; reason; _ } ->
          check "reason is steps" true (reason = Budget.Steps);
          check "lp beats trivial lower" true (Value.compare (Value.Finite 1) lower < 0);
          check "greedy beats trivial upper" true (Value.compare upper (Value.Finite total) < 0))

let () =
  Alcotest.run "anytime"
    [
      ( "faults",
        [
          Alcotest.test_case "parse / to_string" `Quick test_faults_parse;
          Alcotest.test_case "strict spec parsing" `Quick test_faults_parse_strict;
          Alcotest.test_case "crash sites" `Quick test_faults_crash_spec;
          Alcotest.test_case "net sites" `Quick test_faults_net_spec;
          Alcotest.test_case "fault streams" `Quick test_faults_stream;
        ] );
      ( "budget",
        [
          Alcotest.test_case "step exhaustion" `Quick test_budget_steps;
          Alcotest.test_case "unlimited never faults" `Quick test_budget_unlimited;
          Alcotest.test_case "slices charge the parent" `Quick test_budget_slice;
          Alcotest.test_case "memory cap" `Quick test_budget_memory;
          Alcotest.test_case "argument validation" `Quick test_budget_validation;
        ] );
      ( "exact under budget",
        [
          Alcotest.test_case "b&b exhaustion + incumbent" `Quick test_bnb_exhausts;
          Alcotest.test_case "memo cap stays exact" `Quick test_memo_cap_still_exact;
          Alcotest.test_case "deadline gives bounds" `Quick test_deadline_bounds;
        ] );
      ( "solve_bounded",
        [
          Alcotest.test_case "ample budget is exact" `Quick test_ample_budget_is_exact;
          Alcotest.test_case "ptime ignores budget" `Quick test_ptime_ignores_budget;
          Alcotest.test_case "ilp stage completes" `Quick test_ilp_stage_completes;
          Alcotest.test_case "bounds are informative" `Quick test_bounds_informative;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_no_budget_is_exact;
            prop_fault_sweep_brackets;
            prop_step_budget_brackets;
            prop_seeded_faults_bracket;
          ] );
    ]
