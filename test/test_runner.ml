(* Supervised execution layer: wire protocol roundtrips, journal recovery,
   retry/degradation policy, and deterministic kill/wedge supervision
   sweeps.

   Every job pins its own fault plan (at least "off"): the CI matrix runs
   this suite under ambient RPQ_FAULTS sweeps, and an inherited seeded plan
   would make worker budgets — and hence replies — nondeterministic. *)

open Resilience
module Ser = Graphdb.Serialize
module Proto = Runner.Proto
module Journal = Runner.Journal
module Cache = Runner.Cache

let check = Alcotest.(check bool)

(* ---- fixtures ---- *)

(* Two a-edges in series: query aa is satisfied by exactly one path, so
   resilience is 1 and every solver path is fast. *)
let easy_db = "s a m\nm a t\n"

(* The aa gadget on the complete graph K6 (the vertex-cover reduction of
   Definition 4.5): small enough to ship around, hard enough that branch
   and bound ticks a budget thousands of times. *)
let hard_db =
  let g = Graphs.Ugraph.complete 6 in
  let pre, _ = Gadgets.gadget_aa () in
  Ser.to_string (Gadgets.encode pre g)

(* Big enough that an exact solve cannot finish inside any deadline the
   tests hand out — exercises budget clamping without a timing race. *)
let slow_db =
  let g = Graphs.Ugraph.complete 8 in
  let pre, _ = Gadgets.gadget_aa () in
  Ser.to_string (Gadgets.encode pre g)

let job ?(id = "j") ?(db = easy_db) ?(query = "aa") ?deadline ?steps ?memo_cap
    ?(faults = Some "off") ?deadline_ms ?(priority = Proto.default_priority) () =
  {
    Proto.id;
    db;
    query;
    budget = { Proto.deadline; steps; memo_cap };
    faults;
    deadline_ms;
    priority;
    trace = None;
  }

let quick_cfg =
  {
    Runner.default_config with
    Runner.workers = 2;
    retries = 3;
    backoff = 0.005;
    grace = 0.2;
  }

let verdict_of (r : Proto.reply) = r.Proto.verdict

let is_bounded r = match verdict_of r with Proto.V_bounded _ -> true | _ -> false
let is_exact r = match verdict_of r with Proto.V_exact _ -> true | _ -> false

let failure_kind r =
  match verdict_of r with Proto.V_failed { kind; _ } -> Some kind | _ -> None

(* ---- Proto ---- *)

let test_proto_roundtrip () =
  let jobs =
    [
      job ~id:"plain" ();
      job ~id:"full" ~db:hard_db ~deadline:1.5 ~steps:1000 ~memo_cap:4096
        ~faults:(Some "kill:5") ();
      job ~id:"none" ~faults:None ();
      job ~id:"weird \"id\"\n" ~db:"a\tb\\c\n\"quoted\"" ~query:"a|b*" ();
    ]
  in
  List.iter
    (fun j ->
      match Proto.job_of_json (Proto.job_to_json j) with
      | Ok j' -> check ("job roundtrip " ^ j.Proto.id) true (j = j')
      | Error e -> Alcotest.failf "job %s did not roundtrip: %s" j.Proto.id e)
    jobs;
  let replies =
    [
      {
        Proto.id = "e";
        attempts = 1;
        steps = 12;
        wall_s = 0.25;
        trace = None;
        stages = [ ("mincut", 0.2); ("parse", 0.01) ];
        verdict =
          Proto.V_exact
            { value = Value.Finite 3; algorithm = "mincut"; witness = Some [ 1; 2; 7 ] };
        cert = Some (Cert.Certificate.Trivial { why = "query-unsatisfied" });
      };
      {
        Proto.id = "b";
        attempts = 3;
        steps = 40;
        wall_s = 1.5;
        stages = [];
        trace = None;
        verdict =
          Proto.V_bounded
            { lower = Value.Finite 1; upper = Value.Infinite; witness = None; reason = "steps" };
        cert = None;
      };
      Proto.failed ~retriable:true ~id:"f" ~kind:"overloaded" "queue full (%d jobs)" 64;
    ]
  in
  List.iter
    (fun r ->
      match Proto.reply_of_json (Proto.reply_to_json r) with
      | Ok r' -> check ("reply roundtrip " ^ r.Proto.id) true (r = r')
      | Error e -> Alcotest.failf "reply %s did not roundtrip: %s" r.Proto.id e)
    replies;
  (* One line per message is what the pipe framing depends on. *)
  List.iter
    (fun j -> check "no raw newline in encoding" false (String.contains (Proto.job_to_json j) '\n'))
    jobs

let test_proto_rejects () =
  List.iter
    (fun s -> check ("rejected: " ^ s) true (Result.is_error (Proto.job_of_json s)))
    [
      "";
      "not json";
      "{\"id\":\"x\"}";
      "{\"id\":1,\"query\":\"a\",\"db\":\"\"}";
      "{\"id\":\"x\",\"query\":\"a\",\"db\":\"\"} trailing";
      "[1,2]";
    ];
  List.iter
    (fun s -> check ("rejected reply: " ^ s) true (Result.is_error (Proto.reply_of_json s)))
    [
      "{}";
      "{\"id\":\"x\",\"attempts\":1,\"steps\":0,\"wall_s\":0,\"outcome\":\"glorious\"}";
      "{\"id\":\"x\",\"attempts\":1,\"steps\":0,\"wall_s\":0,\"outcome\":\"exact\"}";
    ]

let prop_proto_job_roundtrip =
  let open QCheck in
  Test.make ~name:"proto: job json roundtrip" ~count:200
    (quad string string (option (int_range 1 100000)) (option string))
    (fun (id, db, steps, faults) ->
      let j =
        {
          Proto.id;
          db;
          query = "a*b";
          budget = { Proto.no_budget with steps };
          faults;
          deadline_ms = None;
          priority = Proto.default_priority;
          trace = None;
        }
      in
      Proto.job_of_json (Proto.job_to_json j) = Ok j)

(* ---- Journal ---- *)

let with_temp f =
  let path = Filename.temp_file "rpq_journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ path; path ^ ".tmp" ])
    (fun () -> f path)

let open_exn ?sync ?compact_ratio path =
  match Journal.open_append ?sync ?compact_ratio path with
  | Ok j -> j
  | Error e -> Alcotest.failf "open_append: %s" e

let load_exn path =
  match Journal.load path with
  | Ok rep -> rep
  | Error e -> Alcotest.failf "load: %s" e

let read_file path = In_channel.with_open_bin path In_channel.input_all
let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Byte offsets one past each '\n' — for a well-formed journal these are
   the header and record boundaries. *)
let line_ends s =
  let rec go i acc =
    match String.index_from_opt s i '\n' with
    | Some j -> go (j + 1) ((j + 1) :: acc)
    | None -> List.rev acc
  in
  go 0 []

let sample_reply = Proto.failed ~id:"a" ~kind:"crash" "boom"

let sample_entries =
  [
    Journal.Started { id = "a"; digest = "d1" };
    Journal.Done { id = "a"; digest = "d1"; reply = sample_reply };
    Journal.Started { id = "b"; digest = "d2" };
  ]

let write_journal ?(sync = Journal.Never) path entries =
  let j = open_exn ~sync path in
  List.iter (Journal.append j) entries;
  Journal.close j

let test_journal_roundtrip () =
  with_temp (fun path ->
      Sys.remove path;
      (match Journal.load path with
      | Ok rep ->
          check "missing file is empty" true (rep.Journal.entries = [] && rep.Journal.records = 0)
      | Error e -> Alcotest.failf "missing file must load empty: %s" e);
      write_journal ~sync:Journal.Per_line path sample_entries;
      let rep = load_exn path in
      check "roundtrip" true (rep.Journal.entries = sample_entries);
      check "v2" true (rep.Journal.version = Journal.V2);
      check "record count" true (rep.Journal.records = 3);
      check "sequence counted" true (rep.Journal.last_seq = 3);
      check "no torn tail" true (rep.Journal.torn = None && rep.Journal.torn_bytes = 0);
      (* Started records and superseded Dones are compactable. *)
      check "dead bytes accounted" true (rep.Journal.dead_bytes > 0);
      let tbl = Journal.completed rep.Journal.entries in
      check "a settled" true (Hashtbl.find_opt tbl "a" = Some ("d1", sample_reply));
      check "b pending" true (Hashtbl.find_opt tbl "b" = None);
      (* Reopening continues the sequence rather than restarting it. *)
      let j = open_exn path in
      Journal.append j (Journal.Started { id = "c"; digest = "d3" });
      Journal.close j;
      check "sequence continues across reopen" true ((load_exn path).Journal.last_seq = 4))

let test_journal_torn_tail () =
  with_temp (fun path ->
      write_journal path sample_entries;
      let whole = read_file path in
      (* Tear the final record: drop its last 3 bytes, as a crash between
         write and flush would. *)
      write_file path (String.sub whole 0 (String.length whole - 3));
      let rep = load_exn path in
      check "good prefix loads" true
        (rep.Journal.entries = [ List.nth sample_entries 0; List.nth sample_entries 1 ]);
      check "tail reported torn" true (rep.Journal.torn = Some Journal.Truncated);
      check "torn bytes measured" true (rep.Journal.torn_bytes > 0);
      (* open_append truncates the tail; the next append extends a clean
         prefix and the journal loads with no tear. *)
      let j = open_exn path in
      Journal.append j (Journal.Started { id = "c"; digest = "d3" });
      Journal.close j;
      let rep = load_exn path in
      check "append after tear is clean" true
        (rep.Journal.torn = None
        && rep.Journal.entries
           = [
               List.nth sample_entries 0;
               List.nth sample_entries 1;
               Journal.Started { id = "c"; digest = "d3" };
             ]))

(* Truncation at *every* byte offset must recover the longest intact
   record prefix — never refuse, never hallucinate a record. *)
let test_journal_truncate_every_byte () =
  with_temp (fun path ->
      write_journal path sample_entries;
      let whole = read_file path in
      let ends = line_ends whole in
      (match ends with
      | header_end :: record_ends ->
          for cut = 0 to String.length whole - 1 do
            write_file path (String.sub whole 0 cut);
            let expected =
              if cut < header_end then 0
              else List.length (List.filter (fun e -> e <= cut) record_ends)
            in
            match Journal.load path with
            | Error e -> Alcotest.failf "cut at byte %d refused: %s" cut e
            | Ok rep ->
                if rep.Journal.records <> expected then
                  Alcotest.failf "cut at byte %d: %d records, expected %d" cut
                    rep.Journal.records expected;
                if
                  rep.Journal.entries
                  <> List.filteri (fun i _ -> i < expected) sample_entries
                then Alcotest.failf "cut at byte %d: wrong entry prefix" cut
          done
      | [] -> Alcotest.fail "journal has no lines"))

let test_journal_checksum_flip () =
  with_temp (fun path ->
      write_journal path sample_entries;
      let whole = read_file path in
      let flip pos =
        let b = Bytes.of_string whole in
        Bytes.set b pos (if Bytes.get b pos = '}' then ')' else '}');
        write_file path (Bytes.to_string b)
      in
      (match line_ends whole with
      | [ _; e1; e2; _ ] ->
          (* Mid-file: corrupt the second record's payload (its final byte
             before the newline). Not a torn tail — refuse, with the line. *)
          flip (e2 - 2);
          (match Journal.load path with
          | Ok _ -> Alcotest.fail "mid-file checksum corruption must refuse"
          | Error e ->
              check "error names the file and line" true (contains e (path ^ ":3:"));
              check "error names the cause" true (contains e "checksum"));
          (* Final record: indistinguishable from a torn write — tolerated,
             reported as Bad_checksum, and only the tail is dropped. *)
          flip (String.length whole - 2);
          let rep = load_exn path in
          check "prefix survives a bad final checksum" true
            (rep.Journal.entries = [ List.nth sample_entries 0; List.nth sample_entries 1 ]);
          check "reported as bad checksum" true (rep.Journal.torn = Some Journal.Bad_checksum);
          ignore e1
      | _ -> Alcotest.fail "expected header + 3 records"))

let test_journal_sequence_regression () =
  with_temp (fun path ->
      write_journal path sample_entries;
      let whole = read_file path in
      match line_ends whole with
      | [ h; e1; e2; _ ] ->
          (* Swap records 2 and 3: each frame is individually valid, but
             the sequence regresses — replayed/reordered records must not
             load as if nothing happened. *)
          let sub a b = String.sub whole a (b - a) in
          write_file path
            (sub 0 h ^ sub h e1 ^ sub e2 (String.length whole) ^ sub e1 e2);
          (match Journal.load path with
          | Ok _ -> Alcotest.fail "sequence regression must refuse"
          | Error e -> check "error names the regression" true (contains e "sequence"))
      | _ -> Alcotest.fail "expected header + 3 records")

let test_journal_v1_semantics () =
  with_temp (fun path ->
      let v1_lines entries =
        String.concat "" (List.map (fun e -> Journal.entry_to_json e ^ "\n") entries)
      in
      write_file path (v1_lines sample_entries);
      let rep = load_exn path in
      check "v1 detected" true (rep.Journal.version = Journal.V1);
      check "v1 entries load" true (rep.Journal.entries = sample_entries);
      check "v1 has no sequence" true (rep.Journal.last_seq = 0);
      (* Torn = the file does not end in a newline; the partial line is the
         artifact of dying mid-write and is discarded. *)
      write_file path (v1_lines sample_entries ^ "{\"event\":\"done\",\"id\":\"a\",\"re");
      let rep = load_exn path in
      check "v1 newline-less tail is torn" true
        (rep.Journal.entries = sample_entries && rep.Journal.torn = Some Journal.Truncated);
      (* Regression (PR 3 bug): a *complete* malformed final line is
         corruption, not a torn write — a torn write cannot contain the
         terminator. The old pos_in test conflated the two. *)
      write_file path (v1_lines sample_entries ^ "garbage\n");
      check "v1 complete malformed final line refuses" true
        (Result.is_error (Journal.load path));
      (* ...and so is one in the middle, with its line number. *)
      let mid =
        match sample_entries with
        | e1 :: rest -> v1_lines [ e1 ] ^ "garbage\n" ^ v1_lines rest
        | [] -> assert false
      in
      write_file path mid;
      match Journal.load path with
      | Ok _ -> Alcotest.fail "v1 mid-file garbage must refuse"
      | Error e -> check "v1 error carries file:line" true (contains e (path ^ ":2:")))

let test_journal_v1_migration () =
  with_temp (fun path ->
      write_file path
        (String.concat "" (List.map (fun e -> Journal.entry_to_json e ^ "\n") sample_entries));
      (* Opening for append migrates in place; the append lands in v2. *)
      let j = open_exn path in
      Journal.append j (Journal.Started { id = "c"; digest = "d3" });
      Journal.close j;
      let rep = load_exn path in
      check "migrated to v2" true (rep.Journal.version = Journal.V2);
      check "migration keeps every entry" true
        (rep.Journal.entries = sample_entries @ [ Journal.Started { id = "c"; digest = "d3" } ]);
      check "migration numbers the records" true (rep.Journal.last_seq = 4);
      check "header present" true
        (String.length (read_file path) >= 14 && String.sub (read_file path) 0 14 = "rpq-journal-v2"))

let test_journal_lock () =
  with_temp (fun path ->
      let j = open_exn path in
      (match Journal.open_append path with
      | Ok _ -> Alcotest.fail "double open_append must fail"
      | Error e -> check "second open reports the lock" true (contains e "lock"));
      Journal.close j;
      (* Released on close: a later supervisor can take over. *)
      let j2 = open_exn path in
      Journal.append j2 (Journal.Started { id = "a"; digest = "d" });
      Journal.close j2)

let test_journal_compact () =
  with_temp (fun path ->
      let r1 = Proto.failed ~id:"a" ~kind:"crash" "first" in
      let r2 = Proto.failed ~id:"a" ~kind:"crash" "second" in
      let entries =
        [
          Journal.Started { id = "a"; digest = "d" };
          Journal.Done { id = "a"; digest = "d"; reply = r1 };
          Journal.Done { id = "a"; digest = "d"; reply = r2 };
          Journal.Started { id = "b"; digest = "e" };
        ]
      in
      write_journal path entries;
      let before = load_exn path in
      (match Journal.compact path with
      | Error e -> Alcotest.failf "compact: %s" e
      | Ok s ->
          check "kept the last Done per id" true (s.Journal.kept = 1 && s.Journal.dropped = 3);
          check "bytes reclaimed" true (s.Journal.after_bytes < s.Journal.before_bytes);
          check "before_bytes is the old size" true (s.Journal.before_bytes = before.Journal.bytes));
      let rep = load_exn path in
      check "compacted to the settled answer" true
        (rep.Journal.entries = [ Journal.Done { id = "a"; digest = "d"; reply = r2 } ]);
      check "resequenced from 1" true (rep.Journal.last_seq = 1);
      check "nothing left to reclaim" true (rep.Journal.dead_bytes = 0);
      (* The settled map is invariant under compaction. *)
      check "last Done survives" true
        (Hashtbl.find_opt (Journal.completed rep.Journal.entries) "a" = Some ("d", r2)))

let test_journal_auto_compact () =
  with_temp (fun path ->
      let dones n =
        List.init n (fun i ->
            Journal.Done
              { id = "a"; digest = "d"; reply = Proto.failed ~id:"a" ~kind:"crash" "v%d" i })
      in
      write_journal path (dones 10);
      check "mostly dead" true
        (let rep = load_exn path in
         float_of_int rep.Journal.dead_bytes >= 0.5 *. float_of_int rep.Journal.bytes);
      (* Crossing the dead-byte ratio triggers compaction on open. *)
      let j = open_exn ~compact_ratio:0.5 path in
      Journal.append j (Journal.Started { id = "b"; digest = "e" });
      Journal.close j;
      let rep = load_exn path in
      check "auto-compacted on open" true (rep.Journal.records = 2);
      check "latest answer survived" true
        (match Hashtbl.find_opt (Journal.completed rep.Journal.entries) "a" with
        | Some (_, r) -> (
            match r.Proto.verdict with
            | Proto.V_failed { message; _ } -> contains message "v9"
            | _ -> false)
        | None -> false);
      (* Below the ratio, the journal is left alone. *)
      let before = (load_exn path).Journal.bytes in
      let j = open_exn ~compact_ratio:0.99 path in
      Journal.close j;
      check "no compaction below the ratio" true ((load_exn path).Journal.bytes = before))

(* Crash sites: under a programmatic plan ([with_plan]) the armed site
   raises [Faults.Crash], and the journal must stay loadable afterwards —
   the same invariant `rpq chaos` checks process-externally via _exit. *)
let expect_crash site f =
  match f () with
  | _ -> Alcotest.failf "expected a crash at %s" site
  | exception Faults.Crash s -> check ("crash fired at " ^ site) true (s = site)

let test_journal_crash_sites () =
  with_temp (fun path ->
      let e1 = Journal.Started { id = "a"; digest = "d" } in
      let e2 = Journal.Done { id = "a"; digest = "d"; reply = sample_reply } in
      (* pre_append: dies before the record is framed — nothing lands. *)
      let j = open_exn ~sync:Journal.Per_line path in
      Faults.with_plan (Faults.Crash_at { site = "journal.pre_append"; hits = 2 }) (fun () ->
          Journal.append j e1;
          expect_crash "journal.pre_append" (fun () -> Journal.append j e2));
      Journal.close j;
      check "pre_append: record never written" true ((load_exn path).Journal.entries = [ e1 ]);
      (* post_append: dies after the sync point — the record is durable.
         (compact_ratio 2 disables auto-compaction: a Started-only journal
         is almost all dead bytes, and compacting would drop e1.) *)
      let j = open_exn ~sync:Journal.Per_line ~compact_ratio:2.0 path in
      Faults.with_plan (Faults.Crash_at { site = "journal.post_append"; hits = 1 }) (fun () ->
          expect_crash "journal.post_append" (fun () -> Journal.append j e2));
      Journal.close j;
      check "post_append: record survived" true ((load_exn path).Journal.entries = [ e1; e2 ]);
      (* pre_fsync: dies between flush and fsync — the bytes reached the
         OS, so an in-process reload still sees them. *)
      let j = open_exn ~sync:Journal.Per_line ~compact_ratio:2.0 path in
      Faults.with_plan (Faults.Crash_at { site = "journal.pre_fsync"; hits = 1 }) (fun () ->
          expect_crash "journal.pre_fsync" (fun () -> Journal.append j e1));
      Journal.close j;
      check "pre_fsync: line was flushed" true
        (List.length (load_exn path).Journal.entries = 3);
      (* mid_compact: dies between the temp fsync and the rename — the old
         journal is untouched, atomically. *)
      let before = load_exn path in
      Faults.with_plan (Faults.Crash_at { site = "journal.mid_compact"; hits = 1 }) (fun () ->
          expect_crash "journal.mid_compact" (fun () -> Journal.compact path));
      let after = load_exn path in
      check "mid_compact: old journal intact" true
        (after.Journal.entries = before.Journal.entries && after.Journal.bytes = before.Journal.bytes);
      (* ...and with no fault armed the same compaction goes through. *)
      (match Journal.compact path with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "compact after aborted compact: %s" e);
      check "compaction completes afterwards" true ((load_exn path).Journal.dead_bytes = 0))

let test_journal_last_wins () =
  let r1 = Proto.failed ~id:"a" ~kind:"crash" "first" in
  let r2 = Proto.failed ~id:"a" ~kind:"crash" "second" in
  let entries =
    [
      Journal.Done { id = "a"; digest = "d"; reply = r1 };
      Journal.Done { id = "a"; digest = "d"; reply = r2 };
    ]
  in
  check "last done wins" true (Hashtbl.find_opt (Journal.completed entries) "a" = Some ("d", r2))

let test_job_digest () =
  let j1 = job ~id:"x" ~steps:100 () in
  let j2 = job ~id:"x" ~steps:100 () in
  let j3 = job ~id:"x" ~steps:101 () in
  check "digest is stable" true (Journal.job_digest j1 = Journal.job_digest j2);
  check "digest covers the budget" false (Journal.job_digest j1 = Journal.job_digest j3)

let test_digest_excludes_deadline_priority () =
  (* deadline_ms and priority are delivery instructions, not part of
     what is computed: jobs differing only in them must share digests —
     and therefore share result-cache entries. *)
  let base = job ~id:"x" ~steps:100 () in
  let variant =
    job ~id:"x" ~steps:100 ~deadline_ms:5000 ~priority:"interactive" ()
  in
  check "job digest ignores deadline and priority" true
    (Journal.job_digest base = Journal.job_digest variant);
  check "canonical digest ignores deadline and priority" true
    (Journal.canonical_digest base = Journal.canonical_digest variant);
  let cached = job ~id:"orig" () in
  let good = Runner.run_job_locally cached in
  let cache = Cache.create ~entries:4 in
  Cache.store cache ~digest:(Journal.canonical_digest cached) good;
  let resub = job ~id:"resub" ~deadline_ms:250 ~priority:"batch" () in
  match Cache.find cache ~digest:(Journal.canonical_digest resub) ~id:"resub" with
  | Cache.Hit r ->
      check "cache hit across deadline/priority variants" true
        (r.Proto.verdict = good.Proto.verdict)
  | Cache.Miss | Cache.Cert_reject _ ->
      Alcotest.fail "expected a cache hit for a job differing only in delivery fields"

(* ---- local execution & policy ---- *)

let test_run_job_locally () =
  (match Runner.run_job_locally (job ~id:"easy" ()) with
  | { Proto.verdict = Proto.V_exact { value = Value.Finite 1; _ }; _ } -> ()
  | r -> Alcotest.failf "easy job: expected exact 1, got %s" (Proto.reply_to_json r));
  check "budgeted hard job is bounded" true
    (is_bounded (Runner.run_job_locally (job ~id:"hard" ~db:hard_db ~steps:50 ())));
  check "bad regex" true
    (failure_kind (Runner.run_job_locally (job ~id:"r" ~query:"((" ())) = Some "bad-job");
  check "bad db" true
    (failure_kind (Runner.run_job_locally (job ~id:"d" ~db:"one two\n" ())) = Some "bad-job");
  check "bad faults spec" true
    (failure_kind (Runner.run_job_locally (job ~id:"f" ~faults:(Some "tick:5x") ()))
    = Some "bad-job")

let test_worker_handler_total () =
  (* The handler must map any line to a reply line. *)
  List.iter
    (fun line ->
      match Proto.reply_of_json (Runner.worker_handler line) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "handler reply does not parse for %S: %s" line e)
    [ Proto.job_to_json (job ()); "garbage"; "" ]

let test_degrade_budget_monotone () =
  let steps_of (b : Proto.budget_spec) =
    match b.Proto.steps with
    | Some s -> s
    | None -> Alcotest.fail "degraded budget lost its step bound"
  in
  (* From no budget at all: the first retry must impose a finite ceiling. *)
  let b1 = Runner.degrade_budget ~degrade:8 Proto.no_budget in
  check "first retry bounds steps" true (b1.Proto.steps <> None);
  (* From there on the squeeze is strictly monotone down to the floor. *)
  let rec chase b n =
    if n = 0 then ()
    else begin
      let b' = Runner.degrade_budget ~degrade:8 b in
      check "steps never increase" true (steps_of b' <= steps_of b);
      check "steps stay positive" true (steps_of b' >= 1);
      (match (b.Proto.deadline, b'.Proto.deadline) with
      | Some d, Some d' ->
          check "deadline never increases" true (d' <= d);
          check "deadline stays positive" true (d' > 0.0)
      | None, None -> ()
      | _ -> Alcotest.fail "deadline presence must be preserved");
      chase b' (n - 1)
    end
  in
  chase { b1 with Proto.deadline = Some 10.0 } 20;
  (* The squeeze reaches a budget small enough to exhaust before any
     fault tick >= 2 — the convergence the retry loop relies on. *)
  let rec floor_of b =
    let b' = Runner.degrade_budget ~degrade:8 b in
    if steps_of b' = steps_of b then steps_of b else floor_of b'
  in
  check "degradation reaches the floor" true (floor_of b1 = 1)

(* ---- supervision sweeps ---- *)

let run_batch ?journal ?(cfg = quick_cfg) jobs = Runner.run_batch ?journal cfg jobs
let no_faults f = Faults.with_plan Faults.Off f

let test_kill_sweep () =
  (* Workers self-SIGKILL at assorted ticks; with a step budget that
     degrades 1000 -> 125 -> 15 over the retries, every job must settle as
     Bounded (exhaustion preempts the fault tick) — and the supervisor
     must survive the whole barrage. *)
  let jobs =
    List.map
      (fun n ->
        job
          ~id:(Printf.sprintf "kill%d" n)
          ~db:hard_db ~steps:1000
          ~faults:(Some (Printf.sprintf "kill:%d" n))
          ())
      [ 20; 50; 200 ]
    @ [ job ~id:"easy" (); job ~id:"hard" ~db:hard_db ~steps:400 () ]
  in
  let replies, stats = run_batch jobs in
  check "no structured failures" true (stats.Runner.failures = 0);
  List.iter
    (fun (r : Proto.reply) ->
      match r.Proto.id with
      | "easy" ->
          check "easy stays exact" true (is_exact r);
          check "easy first try" true (r.Proto.attempts = 1)
      | "hard" -> check "hard is bounded" true (is_bounded r)
      | _ ->
          check (r.Proto.id ^ " settles bounded") true (is_bounded r);
          check (r.Proto.id ^ " needed retries") true (r.Proto.attempts > 1))
    replies

let test_kill_every_tick_fails_structured () =
  (* kill:1 fires on the very first tick: no budget can preempt it, so
     the job keeps killing workers until the poison quarantine (K=3
     distinct worker deaths) settles it — structurally, not by killing
     the supervisor, and without spending the remaining retry. *)
  let replies, stats = run_batch [ job ~id:"k1" ~db:hard_db ~steps:1000 ~faults:(Some "kill:1") () ] in
  check "one failure" true (stats.Runner.failures = 1);
  match replies with
  | [ r ] ->
      check "kind is poison" true (failure_kind r = Some "poison");
      check "quarantined at K deaths" true (r.Proto.attempts = Runner.default_config.Runner.poison_k)
  | _ -> Alcotest.fail "expected one reply"

let test_poison_disabled_spends_retries () =
  (* poison_k = 0 disables quarantine: the same job burns every retry and
     fails with the plain crash kind, as before this policy existed. *)
  let cfg = { quick_cfg with Runner.poison_k = 0 } in
  let replies, stats =
    run_batch ~cfg [ job ~id:"k1" ~db:hard_db ~steps:1000 ~faults:(Some "kill:1") () ]
  in
  check "one failure" true (stats.Runner.failures = 1);
  match replies with
  | [ r ] ->
      check "kind is crash" true (failure_kind r = Some "crash");
      check "all attempts spent" true (r.Proto.attempts = 1 + cfg.Runner.retries)
  | _ -> Alcotest.fail "expected one reply"

let counter_count name = Obs.Metrics.count (Obs.Metrics.counter name)

let test_hedge_race_single_settlement () =
  no_faults @@ fun () ->
  (* hedge_after 0.0 with a spare worker: the speculative duplicate
     launches immediately. Whoever finishes first must pass the
     certificate gate, the loser dies without a crash event, and exactly
     one settlement reaches the journal. *)
  let cfg = { quick_cfg with Runner.hedge_after = Some 0.0; retries = 0 } in
  let journal = Filename.temp_file "rpq_hedge" ".journal" in
  Sys.remove journal;
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun f -> if Sys.file_exists f then Sys.remove f)
        [ journal; journal ^ ".tmp" ])
  @@ fun () ->
  let hedges0 = counter_count "runner.hedges_total" in
  let replies, stats =
    run_batch ~journal ~cfg [ job ~id:"h" ~db:hard_db ~steps:400 () ]
  in
  check "no failures" true (stats.Runner.failures = 0);
  (match replies with
  | [ r ] ->
      check "settles bounded" true (is_bounded r);
      check "hedge does not count as an attempt" true (r.Proto.attempts = 1)
  | _ -> Alcotest.fail "expected one reply");
  check "a hedge was launched" true (counter_count "runner.hedges_total" > hedges0);
  match Runner.Journal.load journal with
  | Error e -> Alcotest.failf "journal refuses to load: %s" e
  | Ok rep ->
      let settled = Runner.Journal.completed rep.Runner.Journal.entries in
      check "exactly one settled answer journaled" true (Hashtbl.length settled = 1)

let test_hedged_unhedged_parity () =
  no_faults @@ fun () ->
  (* The central hedging claim: under a deterministic fault plan, a
     hedged run settles every job identically to an unhedged one —
     same attempts, steps and verdict, wall clock aside. The duplicate
     carries the primary's payload verbatim, so the kill fires at the
     same tick on both sides. *)
  let mk () =
    [
      job ~id:"kill" ~db:hard_db ~steps:1000 ~faults:(Some "kill:20") ();
      job ~id:"easy" ();
      job ~id:"hard" ~db:hard_db ~steps:400 ();
    ]
  in
  let plain, _ = run_batch (mk ()) in
  let hedged, _ =
    run_batch ~cfg:{ quick_cfg with Runner.hedge_after = Some 0.0 } (mk ())
  in
  List.iter2
    (fun (a : Proto.reply) b ->
      check ("hedged parity for " ^ a.Proto.id) true
        (Proto.reply_equal_ignoring_time a b))
    plain hedged

let test_deadline_queue_shed () =
  no_faults @@ fun () ->
  (* A single worker is pinned down by a wedging job for ~job_timeout +
     grace; the easy job behind it carries a 100ms end-to-end deadline
     and must be shed at dispatch time with a retriable
     deadline_exceeded reply, never reaching a worker. *)
  let cfg =
    { quick_cfg with Runner.workers = 1; retries = 0; job_timeout = Some 0.4 }
  in
  let shed0 = counter_count "runner.deadline_exceeded_total" in
  let replies, _ =
    run_batch ~cfg
      [
        job ~id:"hog" ~db:hard_db ~steps:1000 ~faults:(Some "wedge:50") ();
        job ~id:"late" ~deadline_ms:100 ();
      ]
  in
  check "deadline shed counted" true
    (counter_count "runner.deadline_exceeded_total" > shed0);
  List.iter
    (fun (r : Proto.reply) ->
      if r.Proto.id = "late" then begin
        check "late job shed as deadline_exceeded" true
          (failure_kind r = Some "deadline_exceeded");
        check "shed reply is retriable" true
          (match r.Proto.verdict with
          | Proto.V_failed { retriable; _ } -> retriable
          | _ -> false)
      end)
    replies

let test_deadline_clamps_budget () =
  no_faults @@ fun () ->
  (* No step budget at all: only the end-to-end deadline can stop this
     solve, by clamping the worker's budget deadline to the remaining
     client budget — so it settles as a certified bound, not a timeout
     death. *)
  let cfg = { quick_cfg with Runner.workers = 1; retries = 0 } in
  let replies, stats = run_batch ~cfg [ job ~id:"clamp" ~db:slow_db ~deadline_ms:150 () ] in
  check "no structured failures" true (stats.Runner.failures = 0);
  match replies with
  | [ r ] -> check "deadline clamps the budget to a certified bound" true (is_bounded r)
  | _ -> Alcotest.fail "expected one reply"

let test_wedge_timeout_path () =
  (* A wedged worker blocks SIGTERM, so only the SIGKILL-after-grace path
     can reclaim it; the budget squeeze then settles the job as Bounded. *)
  let cfg = { quick_cfg with Runner.retries = 2; job_timeout = Some 0.4 } in
  let replies, stats =
    run_batch ~cfg
      [
        job ~id:"wedge" ~db:hard_db ~steps:1000 ~faults:(Some "wedge:50") ();
        job ~id:"easy" ();
      ]
  in
  check "no failures" true (stats.Runner.failures = 0);
  List.iter
    (fun (r : Proto.reply) ->
      match r.Proto.id with
      | "wedge" ->
          check "wedge settles bounded" true (is_bounded r);
          check "wedge needed retries" true (r.Proto.attempts > 1)
      | _ -> check "easy stays exact" true (is_exact r))
    replies

let test_batch_order_and_dup () =
  let jobs = List.init 9 (fun i -> job ~id:(Printf.sprintf "j%d" i) ()) in
  let replies, _ = run_batch jobs in
  check "replies in input order" true
    (List.map (fun (r : Proto.reply) -> r.Proto.id) replies
    = List.map (fun (j : Proto.job) -> j.Proto.id) jobs);
  check "duplicate ids rejected" true
    (try
       ignore (run_batch [ job ~id:"dup" (); job ~id:"dup" () ]);
       false
     with Invalid_argument _ -> true)

let test_journal_resume_identical () =
  with_temp (fun path ->
      Sys.remove path;
      let jobs =
        [
          job ~id:"a" ();
          job ~id:"b" ~db:hard_db ~steps:300 ();
          job ~id:"c" ~db:hard_db ~steps:1000 ~faults:(Some "kill:50") ();
          job ~id:"bad" ~query:"((" ();
        ]
      in
      let replies1, stats1 = run_batch ~journal:path jobs in
      check "first run computes everything" true (stats1.Runner.ran = 4 && stats1.Runner.resumed = 0);
      (* Re-verification exercises the witnesses, so run resume at the
         `cheap` check level regardless of ambient RPQ_CHECK. *)
      let replies2, stats2 =
        Check.with_level Check.Cheap (fun () -> run_batch ~journal:path jobs)
      in
      check "resume skips everything" true (stats2.Runner.ran = 0 && stats2.Runner.resumed = 4);
      check "resumed replies identical (modulo wall clock)" true
        (List.for_all2 Proto.reply_equal_ignoring_time replies1 replies2);
      (* A changed job (same id, different budget) must be recomputed. *)
      let jobs' = List.map (fun (j : Proto.job) ->
          if j.Proto.id = "b" then { j with Proto.budget = { j.Proto.budget with Proto.steps = Some 301 } }
          else j) jobs
      in
      let _, stats3 = run_batch ~journal:path jobs' in
      check "edited job recomputed" true (stats3.Runner.ran = 1 && stats3.Runner.resumed = 3))

let test_journal_resume_partial () =
  with_temp (fun path ->
      Sys.remove path;
      let early = [ job ~id:"a" (); job ~id:"b" ~db:hard_db ~steps:300 () ] in
      let all = early @ [ job ~id:"c" (); job ~id:"d" ~db:hard_db ~steps:200 () ] in
      let replies1, _ = run_batch ~journal:path early in
      (* Simulates a SIGKILLed batch: the journal holds two settled jobs,
         the rerun sees the full job list. *)
      let replies2, stats = run_batch ~journal:path all in
      check "only the new jobs ran" true (stats.Runner.ran = 2 && stats.Runner.resumed = 2);
      List.iteri
        (fun i r1 ->
          check "recorded prefix reused" true
            (Proto.reply_equal_ignoring_time r1 (List.nth replies2 i)))
        replies1)

let test_journal_rejects_corrupt_answer () =
  with_temp (fun path ->
      Sys.remove path;
      let jobs = [ job ~id:"a" () ] in
      let _ = run_batch ~journal:path jobs in
      (* Tamper: claim the answer was exact 1 with an empty witness and no
         certificate. Resume-time re-checking requires settled answers to
         carry a valid certificate, so the record is thrown away and the
         job recomputed. *)
      let forged =
        {
          Proto.id = "a";
          attempts = 1;
          steps = 0;
          wall_s = 0.0;
          stages = [];
          trace = None;
          verdict =
            Proto.V_exact { value = Value.Finite 1; algorithm = "forged"; witness = Some [] };
          cert = None;
        }
      in
      let j = open_exn path in
      Journal.append j
        (Journal.Done { id = "a"; digest = Journal.job_digest (List.nth jobs 0); reply = forged });
      Journal.close j;
      let replies, stats =
        Check.with_level Check.Cheap (fun () -> run_batch ~journal:path jobs)
      in
      check "forged answer not reused" true (stats.Runner.ran = 1 && stats.Runner.resumed = 0);
      (match replies with
      | [ r ] -> check "recomputed answer is sound" true (Runner.verify_reply r)
      | _ -> Alcotest.fail "expected one reply");
      (* With checking off, the (well-formed) record is taken at face
         value: resume must not pay verification cost unless asked. *)
      let _, stats_off =
        Check.with_level Check.Off (fun () -> run_batch ~journal:path jobs)
      in
      check "RPQ_CHECK=off trusts the journal" true (stats_off.Runner.resumed = 1))

let test_batch_crash_and_resume () =
  with_temp (fun path ->
      Sys.remove path;
      let jobs = [ job ~id:"a" (); job ~id:"b" (); job ~id:"c" () ] in
      (* The supervisor dies right after handing out the first job — the
         journal holds a Started with no Done. In-process the crash is an
         exception; Fun.protect still closes the journal (releasing the
         lock), unlike the _exit-70 path the chaos harness exercises. *)
      (match
         Faults.with_plan (Faults.Crash_at { site = "pool.post_dispatch"; hits = 1 }) (fun () ->
             run_batch ~journal:path jobs)
       with
      | _ -> Alcotest.fail "expected a supervisor crash"
      | exception Faults.Crash site -> check "crashed at dispatch" true (site = "pool.post_dispatch"));
      let rep = load_exn path in
      check "journal survives the crash" true (rep.Journal.version = Journal.V2);
      check "nothing settled before the crash" true
        (Hashtbl.length (Journal.completed rep.Journal.entries) = 0);
      let replies, stats = run_batch ~journal:path jobs in
      check "resume settles everything" true
        (List.length replies = 3 && stats.Runner.failures = 0);
      check "every job accounted for" true (stats.Runner.ran + stats.Runner.resumed = 3);
      List.iter (fun r -> check "resumed replies are exact" true (is_exact r)) replies)

let test_max_heap_bounds () =
  (* A 1 MB ceiling is below the solver's working set on the hard
     instance: the Gc alarm flags the overrun, the probe converts it to
     Budget.Exhausted Memory, and the job settles as a certified Bounded
     reply — it must not fail, and must name memory as the reason. The
     deadline is a backstop so a regression fails fast instead of running
     the full exponential search. *)
  Runner.set_max_heap_mb (Some 1);
  Fun.protect ~finally:(fun () -> Runner.set_max_heap_mb None) @@ fun () ->
  let r = Runner.run_job_locally (job ~id:"mem" ~db:hard_db ~deadline:10.0 ()) in
  match r.Proto.verdict with
  | Proto.V_bounded { reason; _ } -> Alcotest.(check string) "exhausted by memory" "memory" reason
  | _ -> Alcotest.failf "expected bounded-by-memory, got %s" (Proto.reply_to_json r)

let test_verify_reply () =
  let j = job ~id:"v" () in
  let good = Runner.run_job_locally j in
  check "honest reply verifies" true (Runner.verify_reply good);
  (* A forged verdict no longer matches the (untouched) certificate: the
     unknown algorithm name and the unpinned witness must both fail. *)
  let forged =
    { good with Proto.verdict = Proto.V_exact { value = Value.Finite 1; algorithm = "x"; witness = Some [] } }
  in
  check "forged witness fails" false (Runner.verify_reply forged);
  check "stripped certificate fails" false
    (Runner.verify_reply { good with Proto.cert = None });
  check "error replies pass vacuously" true
    (Runner.verify_reply (Proto.failed ~id:"v" ~kind:"crash" "boom"))

(* ---- serve ---- *)

let test_serve_roundtrip_and_shedding () =
  let in_path = Filename.temp_file "rpq_serve_in" ".jsonl" in
  let out_path = Filename.temp_file "rpq_serve_out" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ in_path; out_path ])
    (fun () ->
      (* One worker, queue of one: the wedge job occupies the worker for
         its full (short) timeout, so of the easy jobs behind it at least
         one must be shed with a retriable `overloaded'. *)
      let jobs =
        job ~id:"w" ~db:hard_db ~steps:1000 ~faults:(Some "wedge:10") ()
        :: List.init 4 (fun i -> job ~id:(Printf.sprintf "e%d" i) ())
      in
      Out_channel.with_open_text in_path (fun oc ->
          List.iter (fun j -> output_string oc (Proto.job_to_json j ^ "\n")) jobs;
          output_string oc "this is not json\n");
      let cfg =
        {
          quick_cfg with
          Runner.workers = 1;
          retries = 0;
          queue_cap = 1;
          job_timeout = Some 0.3;
        }
      in
      In_channel.with_open_text in_path (fun ic ->
          Out_channel.with_open_text out_path (fun oc -> Runner.serve cfg ic oc));
      let replies =
        In_channel.with_open_text out_path In_channel.input_lines
        |> List.map (fun line ->
               match Proto.reply_of_json line with
               | Ok r -> r
               | Error e -> Alcotest.failf "unparseable serve reply %S: %s" line e)
      in
      check "every input line got a reply" true (List.length replies = 6);
      let by_kind k =
        List.length (List.filter (fun r -> failure_kind r = Some k) replies)
      in
      check "wedge timed out (retries=0)" true (by_kind "timeout" = 1);
      check "overload shedding happened" true (by_kind "overloaded" >= 1);
      check "bad line answered structurally" true (by_kind "bad-job" = 1);
      List.iter
        (fun r ->
          match verdict_of r with
          | Proto.V_failed { kind = "overloaded"; retriable; _ } ->
              check "overloaded is retriable" true retriable
          | _ -> ())
        replies;
      check "whatever was admitted besides the wedge ran exactly" true
        (List.for_all
           (fun (r : Proto.reply) ->
             if String.length r.Proto.id > 0 && r.Proto.id.[0] = 'e' then
               is_exact r || failure_kind r = Some "overloaded"
             else true)
           replies))

(* ---- admission, transport, cache ---- *)

module Admission = Runner.Admission
module Transport = Runner.Transport

(* The transport consults the ambient fault plan ([net:*] sites); pin it
   off so the CI RPQ_FAULTS sweeps cannot perturb these tests. *)
let test_admission_round_robin () =
  let adm = Admission.create ~client_inflight:100 in
  List.iter
    (fun (cid, x) -> Admission.enqueue adm cid x)
    [ (1, "a1"); (1, "a2"); (1, "a3"); (2, "b1"); (2, "b2"); (3, "c1") ];
  check "queued counts" true
    (Admission.queued adm = 6 && Admission.queued_for adm 1 = 3);
  let order = ref [] in
  let continue = ref true in
  while !continue do
    match Admission.next adm with
    | Some (_, x) -> order := x :: !order
    | None -> continue := false
  done;
  (* Arrival order was all of client 1, then 2, then 3; admission must
     interleave one job per client per round. *)
  Alcotest.(check (list string))
    "round-robin interleaves clients"
    [ "a1"; "b1"; "c1"; "a2"; "b2"; "a3" ]
    (List.rev !order);
  check "everything admitted is outstanding" true (Admission.inflight adm = 6);
  Admission.settled adm 1;
  check "settled frees one slot" true (Admission.inflight_for adm 1 = 2);
  check "cap below 1 rejected" true
    (match Admission.create ~client_inflight:0 with
    | (_ : unit Admission.t) -> false
    | exception Invalid_argument _ -> true)

let test_admission_inflight_cap () =
  let adm = Admission.create ~client_inflight:2 in
  List.iter (fun x -> Admission.enqueue adm 1 x) [ "a1"; "a2"; "a3"; "a4" ];
  Admission.enqueue adm 2 "b1";
  let pop () = match Admission.next adm with Some (_, x) -> x | None -> "-" in
  (* The monopolizer admits up to its cap; the other client's single job
     is never starved behind the backlog. *)
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  let p4 = pop () in
  Alcotest.(check (list string))
    "monopolizer capped, small client served"
    [ "a1"; "b1"; "a2"; "-" ] [ p1; p2; p3; p4 ];
  check "capped client keeps its backlog queued" true (Admission.queued_for adm 1 = 2);
  Admission.settled adm 1;
  check "headroom after settle admits the next job" true (pop () = "a3");
  check "and the cap binds again" true (pop () = "-");
  (* Cancel returns the queued (never the outstanding) items in order. *)
  Alcotest.(check (list string)) "cancel returns queued FIFO" [ "a4" ] (Admission.cancel adm 1);
  check "cancelled client has nothing queued" true (Admission.queued_for adm 1 = 0);
  check "outstanding jobs were not cancelled" true (Admission.inflight_for adm 1 = 2)

let test_admission_priority_classes () =
  let adm = Admission.create ~client_inflight:100 in
  (* One client per class, everything enqueued before the first pop: the
     dequeue order is then exactly the weighted cycle (interactive 4 :
     normal 2 : batch 1), with the highest non-empty class standing in
     once the scheduled class drains. *)
  List.iter
    (fun (prio, cid, x) -> Admission.enqueue ~prio adm cid x)
    [
      (0, 1, "b1"); (0, 1, "b2");
      (1, 2, "n1"); (1, 2, "n2"); (1, 2, "n3");
      (2, 3, "i1"); (2, 3, "i2"); (2, 3, "i3"); (2, 3, "i4");
    ];
  let order = ref [] in
  let continue = ref true in
  while !continue do
    match Admission.next adm with
    | Some (_, x) -> order := x :: !order
    | None -> continue := false
  done;
  Alcotest.(check (list string))
    "weighted cycle with fallback"
    [ "i1"; "n1"; "i2"; "b1"; "i3"; "n2"; "i4"; "n3"; "b2" ]
    (List.rev !order);
  (* Priority eviction at the cap: steal_lowest takes the oldest item of
     the lowest class strictly below the arrival's, or refuses. *)
  Admission.enqueue ~prio:0 adm 1 "b3";
  Admission.enqueue ~prio:1 adm 2 "n4";
  check "steal below interactive takes the batch item" true
    (Admission.steal_lowest adm ~below:2 = Some (1, "b3"));
  check "steal below normal refuses the normal item" true
    (Admission.steal_lowest adm ~below:1 = None);
  check "steal below batch never fires" true
    (Admission.steal_lowest adm ~below:0 = None);
  check "with batch gone the normal item is lowest" true
    (Admission.steal_lowest adm ~below:2 = Some (2, "n4"));
  check "nothing left queued" true (Admission.queued adm = 0)

let test_serve_disconnect_aborts_hedge () =
  no_faults @@ fun () ->
  (* A client submits a job that can only wedge, lingers long enough for
     the server to hedge it, then vanishes abruptly. Both attempts must
     be aborted (the serve loop exits promptly instead of waiting out
     the 5s wall backstop), the admission slot released, and no orphan
     settlement journaled. *)
  let journal = Filename.temp_file "rpq_disc" ".journal" in
  Sys.remove journal;
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun f -> if Sys.file_exists f then Sys.remove f)
        [ journal; journal ^ ".tmp" ])
  @@ fun () ->
  let srv_fd, cli_fd = Transport.pair () in
  let stuck = job ~id:"stuck" ~db:hard_db ~steps:1000 ~faults:(Some "wedge:50") () in
  match Unix.fork () with
  | 0 ->
      Unix.close srv_fd;
      let oc = Unix.out_channel_of_descr cli_fd in
      output_string oc (Proto.job_to_wire_json stuck ^ "\n");
      flush oc;
      Unix.sleepf 0.5;
      Unix._exit 0
  | pid ->
      Unix.close cli_fd;
      let cancelled0 = counter_count "serve.cancelled" in
      let hedges0 = counter_count "runner.hedges_total" in
      let scfg =
        {
          Runner.default_serve_config with
          Runner.base =
            {
              quick_cfg with
              Runner.workers = 2;
              hedge_after = Some 0.05;
              job_timeout = Some 5.0;
            };
          serve_journal = Some journal;
        }
      in
      let t0 = Unix.gettimeofday () in
      Runner.serve_sockets ~preconnected_abrupt:[ srv_fd ] scfg;
      let elapsed = Unix.gettimeofday () -. t0 in
      ignore (Unix.waitpid [] pid);
      check "the job was hedged before the disconnect" true
        (counter_count "runner.hedges_total" > hedges0);
      check "disconnect cancelled the inflight job" true
        (counter_count "serve.cancelled" > cancelled0);
      check "serve exited by abort, not by the wall backstop" true (elapsed < 4.0);
      if Sys.file_exists journal then begin
        match Runner.Journal.load journal with
        | Error e -> Alcotest.failf "journal refuses to load: %s" e
        | Ok rep ->
            check "no orphan settlement journaled" true
              (Hashtbl.length (Runner.Journal.completed rep.Runner.Journal.entries) = 0)
      end

let test_transport_write_timeout () =
  no_faults @@ fun () ->
  check "non-positive write timeout rejected" true
    (match Transport.create ~write_timeout:0.0 () with
    | (_ : Transport.t) -> false
    | exception Invalid_argument _ -> true);
  let tr = Transport.create ~write_timeout:1e-6 () in
  let a, b = Transport.pair () in
  let c = Transport.add_client tr ~in_fd:a ~out_fd:a () in
  let peer = Transport.add_client tr ~in_fd:b ~out_fd:b () in
  (* The peer never reads: one oversized reply saturates the socket
     buffer (a single flush moves at most 64 KiB), so output stalls with
     bytes still pending and the 1 µs stall budget expires at once. *)
  ignore (Transport.send tr c (String.make 400_000 'x'));
  check "output is stalled" true (Transport.pending_out c > 0);
  let dead = ref false in
  let iters = ref 0 in
  while (not !dead) && !iters < 1_000_000 do
    incr iters;
    List.iter
      (function
        | Transport.Dead (dc, _) -> if Transport.cid dc = Transport.cid c then dead := true
        | _ -> ())
      (Transport.check_timeouts tr)
  done;
  check "stalled client declared dead" true !dead;
  check "dead client removed from the transport" true
    (not (List.exists (fun x -> Transport.cid x = Transport.cid c) (Transport.clients tr)));
  check "send to a dead client is a silent no-op" true (Transport.send tr c "late" = []);
  Transport.drop tr peer

let test_transport_backpressure () =
  no_faults @@ fun () ->
  let tr = Transport.create ~out_cap:10 () in
  let a, b = Transport.pair () in
  let c = Transport.add_client tr ~in_fd:a ~out_fd:a () in
  let peer = Transport.add_client tr ~in_fd:b ~out_fd:b () in
  check "both clients start readable" true (List.length (Transport.read_fds tr) = 2);
  (* Buffer well past out_cap: the client's input fd must leave the read
     set — a client that stops reading replies stops submitting. *)
  ignore (Transport.send tr c (String.make 100_000 'y'));
  check "backpressured client leaves the read set" true
    (List.length (Transport.read_fds tr) = 1);
  let iters = ref 0 in
  while Transport.pending_out c > 0 && !iters < 100 do
    incr iters;
    List.iter (fun fd -> ignore (Transport.handle_writable tr fd)) (Transport.write_fds tr)
  done;
  check "output drained" true (Transport.pending_out c = 0);
  check "drained client rejoins the read set" true
    (List.length (Transport.read_fds tr) = 2);
  Transport.drop tr c;
  Transport.drop tr peer

(* A forged exact verdict: the untouched certificate no longer matches,
   so the independent checker must refuse it wherever it resurfaces —
   cache lookups and journal-seeded entries alike. *)
let forge (r : Proto.reply) =
  {
    r with
    Proto.verdict =
      Proto.V_exact { value = Value.Finite 1; algorithm = "forged"; witness = Some [] };
  }

let test_cache_hit_miss_lru () =
  let j = job ~id:"orig" () in
  let good = Runner.run_job_locally j in
  let digest = Journal.canonical_digest j in
  let cache = Cache.create ~entries:2 in
  check "empty cache misses" true (Cache.find cache ~digest ~id:"q" = Cache.Miss);
  Cache.store cache ~digest good;
  (match Cache.find cache ~digest ~id:"other" with
  | Cache.Hit r ->
      check "hit rewrites the id to the requester's" true (r.Proto.id = "other");
      check "hit reports zero supervisor time" true (r.Proto.wall_s = 0.0);
      check "verdict and certificate preserved" true
        (r.Proto.verdict = good.Proto.verdict && r.Proto.cert = good.Proto.cert)
  | Cache.Miss | Cache.Cert_reject _ -> Alcotest.fail "expected a hit");
  (* Error replies describe circumstance, not the answer: never cached. *)
  Cache.store cache ~digest:"dg-err" (Proto.failed ~id:"e" ~kind:"crash" "boom");
  check "failures are not cached" true (Cache.find cache ~digest:"dg-err" ~id:"e" = Cache.Miss);
  (* LRU at capacity 2: touch the first entry, insert a third, and the
     untouched second entry is the one evicted. *)
  let j2 = job ~id:"j2" ~query:"a" () in
  let d2 = Journal.canonical_digest j2 in
  Cache.store cache ~digest:d2 (Runner.run_job_locally j2);
  ignore (Cache.find cache ~digest ~id:"touch");
  let j3 = job ~id:"j3" ~query:"aa|a" () in
  let d3 = Journal.canonical_digest j3 in
  Cache.store cache ~digest:d3 (Runner.run_job_locally j3);
  check "lru entry evicted at capacity" true (Cache.find cache ~digest:d2 ~id:"x" = Cache.Miss);
  check "recently used entry survives" true
    (match Cache.find cache ~digest ~id:"y" with Cache.Hit _ -> true | _ -> false);
  check "at most [entries] cached" true (Cache.length cache = 2);
  (* entries <= 0 disables the cache entirely. *)
  let off = Cache.create ~entries:0 in
  Cache.store off ~digest good;
  check "disabled cache never hits" true (Cache.find off ~digest ~id:"z" = Cache.Miss)

let test_cache_cert_reject () =
  let j = job ~id:"cr" () in
  let good = Runner.run_job_locally j in
  let digest = Journal.canonical_digest j in
  let cache = Cache.create ~entries:4 in
  Cache.store cache ~digest (forge good);
  (match Cache.find cache ~digest ~id:"victim" with
  | Cache.Cert_reject _ -> ()
  | Cache.Hit _ -> Alcotest.fail "a tampered entry was served from the cache"
  | Cache.Miss -> Alcotest.fail "expected Cert_reject, got Miss");
  check "rejected entry was evicted (next lookup recomputes)" true
    (Cache.find cache ~digest ~id:"victim" = Cache.Miss);
  Cache.store cache ~digest good;
  check "the honest reply serves" true
    (match Cache.find cache ~digest ~id:"v2" with Cache.Hit _ -> true | _ -> false)

(* Drive [serve_sockets] end-to-end over pre-connected socketpairs: each
   client pre-writes its job lines, half-closes, and reads replies back
   after the server returns. *)
let run_serve_clients ?(encode = fun j -> Proto.job_to_json j) ~scfg
    jobs_per_client =
  let ends = List.map (fun _ -> Transport.pair ()) jobs_per_client in
  let chans = List.map (fun (_, fd) -> Transport.channels_of_fd fd) ends in
  List.iter2
    (fun (_, oc) jobs ->
      List.iter (fun j -> output_string oc (encode j ^ "\n")) jobs;
      Transport.shutdown_send oc)
    chans jobs_per_client;
  Runner.serve_sockets ~preconnected:(List.map fst ends) scfg;
  List.map
    (fun (ic, oc) ->
      let rec rd acc =
        match input_line ic with
        | line -> begin
            match Proto.reply_of_json line with
            | Ok r -> rd (r :: acc)
            | Error e -> Alcotest.failf "unparseable serve reply %S: %s" line e
          end
        | exception End_of_file -> List.rev acc
      in
      let rs = rd [] in
      close_in ic;
      close_out_noerr oc;
      rs)
    chans

let test_serve_two_clients () =
  no_faults @@ fun () ->
  let scfg =
    {
      Runner.default_serve_config with
      Runner.base = quick_cfg;
      cache_entries = 8;
      client_inflight = 2;
    }
  in
  let c1_jobs = List.init 3 (fun i -> job ~id:(Printf.sprintf "a%d" i) ()) in
  (* "a0" on purpose: the same id on two clients must not collide — jobs
     run under namespaced internal ids and each client gets its own
     reply back (the second is a certificate-checked cache hit). *)
  let c2_jobs = [ job ~id:"a0" (); job ~id:"b1" ~query:"a" () ] in
  match run_serve_clients ~scfg [ c1_jobs; c2_jobs ] with
  | [ r1; r2 ] ->
      let ids rs = List.sort compare (List.map (fun (r : Proto.reply) -> r.Proto.id) rs) in
      Alcotest.(check (list string)) "client 1 got exactly its ids" [ "a0"; "a1"; "a2" ] (ids r1);
      Alcotest.(check (list string)) "client 2 got exactly its ids" [ "a0"; "b1" ] (ids r2);
      List.iter
        (fun r -> check "every reply verifies independently" true (Runner.verify_reply r))
        (r1 @ r2)
  | rs -> Alcotest.failf "expected replies for two clients, got %d" (List.length rs)

let test_serve_journal_seed_and_release () =
  no_faults @@ fun () ->
  with_temp (fun jpath ->
      Sys.remove jpath;
      let j = job ~id:"t1" () in
      let digest = Journal.canonical_digest j in
      let good = Runner.run_job_locally j in
      (* A journal whose settled answer was tampered with on disk: the
         server seeds its cache from it, but the certificate gate at
         lookup must force a recompute rather than serve the forgery. *)
      write_journal jpath [ Journal.Done { id = "t1"; digest; reply = forge good } ];
      let scfg =
        {
          Runner.default_serve_config with
          Runner.base = quick_cfg;
          serve_journal = Some jpath;
        }
      in
      (match run_serve_clients ~scfg [ [ j ] ] with
      | [ [ r ] ] ->
          check "tampered seed not served; answer recomputed" true (Runner.verify_reply r);
          check "recomputed answer is exact" true (is_exact r)
      | _ -> Alcotest.fail "expected exactly one reply for one client");
      (* The EOF exit path must close the journal: the exclusive lock is
         released and the settlement was appended under the original id
         with the canonical digest. *)
      (match Journal.open_append jpath with
      | Ok jl -> Journal.close jl
      | Error e -> Alcotest.failf "journal lock not released after serve: %s" e);
      let rep = load_exn jpath in
      match Hashtbl.find_opt (Journal.completed rep.Journal.entries) "t1" with
      | Some (d, r) ->
          check "journaled under the canonical digest" true (d = digest);
          check "journaled settlement verifies (last wins over the forgery)" true
            (Runner.verify_reply r)
      | None -> Alcotest.fail "t1 not settled in the serve journal")

(* ---- telemetry: cross-process traces ---- *)

module Trace = Obs.Trace
module Trace_check = Runner.Trace_check

(* Run [f] with tracing routed to a temp JSONL file; return the file's
   bytes after [Trace.finish] has flushed the meta record and spans. *)
let with_traced f =
  with_temp (fun path ->
      Trace.configure ~format:Trace.Jsonl path;
      Fun.protect ~finally:Trace.finish f;
      read_file path)

(* A traced serve with a worker killed mid-job. The span opened here
   plays the remote client: its context rides the wire form of each job,
   so the supervisor's request and job spans — and the workers'
   re-emitted spans, including the killed attempts the supervisor
   closes as [interrupted] — all join its trace in the one sink. The
   stitched file must validate as a whole. *)
let test_trace_stitched_kill () =
  no_faults @@ fun () ->
  let content =
    with_traced (fun () ->
        let h =
          match Trace.open_span "request" with
          | Some h -> h
          | None -> Alcotest.fail "tracing configured but open_span declined"
        in
        let tid = (Trace.handle_ctx h).Trace.trace_id in
        let ctx = Some (Trace.ctx_to_string (Trace.handle_ctx h)) in
        let jobs =
          [
            { (job ~id:"ok" ()) with Proto.trace = ctx };
            (* kill:1 fires on the first budget tick of every attempt:
               each worker dies with its solve span open, and the
               supervisor must close all of them as interrupted. *)
            { (job ~id:"boom" ~faults:(Some "kill:1") ()) with Proto.trace = ctx };
          ]
        in
        let scfg = { Runner.default_serve_config with Runner.base = quick_cfg } in
        (match run_serve_clients ~encode:Proto.job_to_wire_json ~scfg [ jobs ] with
        | [ rs ] ->
            check "both jobs settled" true (List.length rs = 2);
            List.iter
              (fun (r : Proto.reply) ->
                match r.Proto.id with
                | "ok" -> begin
                    match Option.bind r.Proto.trace Trace.ctx_of_string with
                    | Some rctx ->
                        check "reply joins the client's trace" true
                          (rctx.Trace.trace_id = tid)
                    | None -> Alcotest.fail "traced reply without a usable trace ctx"
                  end
                | _ ->
                    check "killed job quarantined as poison" true
                      (failure_kind r = Some "poison");
                    check "killed job quarantined at K deaths" true
                      (r.Proto.attempts = quick_cfg.Runner.poison_k))
              rs
        | rs -> Alcotest.failf "expected one client's replies, got %d" (List.length rs));
        Trace.close_span h)
  in
  (match Trace_check.check_jsonl_string content with
  | Ok st ->
      check "client, request, job and worker spans present" true
        (st.Trace_check.spans >= 4);
      check "worker pids stitched in" true (st.Trace_check.processes >= 2);
      check "everything shares the client's trace id" true
        (st.Trace_check.traces = 1)
  | Error e -> Alcotest.failf "stitched trace rejected: %s" e);
  check "killed attempts were closed as interrupted spans" true
    (contains content "\"interrupted\":true")

(* Hand-built two-span segment; [psid] selects the child's parent. *)
let orphan_fixture ~psid =
  String.concat "\n"
    [
      {|{"ev":"meta","pid":1,"t0":1000000,"tid":"t1"}|};
      {|{"ev":"span","name":"root","ts":0.0,"dur":0.1,"depth":0,"pid":1,"tid":"t1","sid":"t1.1"}|};
      Printf.sprintf
        {|{"ev":"span","name":"child","ts":0.01,"dur":0.02,"depth":1,"pid":1,"tid":"t1","sid":"t1.2","psid":"%s"}|}
        psid;
      "";
    ]

let test_trace_orphan_reject () =
  (match Trace_check.check_jsonl_string (orphan_fixture ~psid:"t1.1") with
  | Ok st -> check "well-parented fixture validates" true (st.Trace_check.spans = 2)
  | Error e -> Alcotest.failf "well-parented fixture rejected: %s" e);
  match Trace_check.check_jsonl_string (orphan_fixture ~psid:"t1.9") with
  | Ok _ -> Alcotest.fail "a span naming a parent absent from the file must reject"
  | Error e -> check "error names the orphan" true (contains e "orphan")

let () =
  Alcotest.run "runner"
    [
      ( "proto",
        [
          Alcotest.test_case "roundtrips" `Quick test_proto_roundtrip;
          Alcotest.test_case "rejects" `Quick test_proto_rejects;
          QCheck_alcotest.to_alcotest prop_proto_job_roundtrip;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "truncate at every byte" `Quick test_journal_truncate_every_byte;
          Alcotest.test_case "checksum flips" `Quick test_journal_checksum_flip;
          Alcotest.test_case "sequence regression" `Quick test_journal_sequence_regression;
          Alcotest.test_case "v1 torn vs corrupt" `Quick test_journal_v1_semantics;
          Alcotest.test_case "v1 migration" `Quick test_journal_v1_migration;
          Alcotest.test_case "exclusive lock" `Quick test_journal_lock;
          Alcotest.test_case "compaction" `Quick test_journal_compact;
          Alcotest.test_case "auto-compaction" `Quick test_journal_auto_compact;
          Alcotest.test_case "crash sites" `Quick test_journal_crash_sites;
          Alcotest.test_case "last done wins" `Quick test_journal_last_wins;
          Alcotest.test_case "job digest" `Quick test_job_digest;
          Alcotest.test_case "digest excludes delivery fields" `Quick
            test_digest_excludes_deadline_priority;
        ] );
      ( "policy",
        [
          Alcotest.test_case "run_job_locally" `Quick test_run_job_locally;
          Alcotest.test_case "worker handler is total" `Quick test_worker_handler_total;
          Alcotest.test_case "degradation is monotone" `Quick test_degrade_budget_monotone;
          Alcotest.test_case "verify_reply" `Quick test_verify_reply;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "kill sweep degrades to bounds" `Quick test_kill_sweep;
          Alcotest.test_case "kill:1 fails structurally" `Quick test_kill_every_tick_fails_structured;
          Alcotest.test_case "poison off spends retries" `Quick test_poison_disabled_spends_retries;
          Alcotest.test_case "wedge takes the sigkill path" `Quick test_wedge_timeout_path;
          Alcotest.test_case "reply order and duplicate ids" `Quick test_batch_order_and_dup;
          Alcotest.test_case "hedge settles exactly once" `Quick test_hedge_race_single_settlement;
          Alcotest.test_case "hedged equals unhedged" `Quick test_hedged_unhedged_parity;
          Alcotest.test_case "queued deadline sheds" `Quick test_deadline_queue_shed;
          Alcotest.test_case "deadline clamps the budget" `Quick test_deadline_clamps_budget;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "resume is identical" `Quick test_journal_resume_identical;
          Alcotest.test_case "partial journal" `Quick test_journal_resume_partial;
          Alcotest.test_case "corrupt answers rejected" `Quick test_journal_rejects_corrupt_answer;
          Alcotest.test_case "supervisor crash and resume" `Quick test_batch_crash_and_resume;
          Alcotest.test_case "heap ceiling settles bounded" `Quick test_max_heap_bounds;
        ] );
      ( "serve",
        [
          Alcotest.test_case "roundtrip + shedding" `Quick test_serve_roundtrip_and_shedding;
          Alcotest.test_case "admission round-robin" `Quick test_admission_round_robin;
          Alcotest.test_case "admission inflight cap" `Quick test_admission_inflight_cap;
          Alcotest.test_case "admission priority classes" `Quick test_admission_priority_classes;
          Alcotest.test_case "disconnect aborts hedged job" `Quick
            test_serve_disconnect_aborts_hedge;
          Alcotest.test_case "write-timeout kills stalled client" `Quick test_transport_write_timeout;
          Alcotest.test_case "backpressure gates input" `Quick test_transport_backpressure;
          Alcotest.test_case "two clients, namespaced ids" `Quick test_serve_two_clients;
          Alcotest.test_case "journal seed + lock release" `Quick test_serve_journal_seed_and_release;
        ] );
      ( "trace",
        [
          Alcotest.test_case "stitched kill trace validates" `Quick test_trace_stitched_kill;
          Alcotest.test_case "orphan span rejects" `Quick test_trace_orphan_reject;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit / miss / lru" `Quick test_cache_hit_miss_lru;
          Alcotest.test_case "certificate gate" `Quick test_cache_cert_reject;
        ] );
    ]
