(* Supervised execution layer: wire protocol roundtrips, journal recovery,
   retry/degradation policy, and deterministic kill/wedge supervision
   sweeps.

   Every job pins its own fault plan (at least "off"): the CI matrix runs
   this suite under ambient RPQ_FAULTS sweeps, and an inherited seeded plan
   would make worker budgets — and hence replies — nondeterministic. *)

open Resilience
module Ser = Graphdb.Serialize
module Proto = Runner.Proto
module Journal = Runner.Journal

let check = Alcotest.(check bool)

(* ---- fixtures ---- *)

(* Two a-edges in series: query aa is satisfied by exactly one path, so
   resilience is 1 and every solver path is fast. *)
let easy_db = "s a m\nm a t\n"

(* The aa gadget on the complete graph K6 (the vertex-cover reduction of
   Definition 4.5): small enough to ship around, hard enough that branch
   and bound ticks a budget thousands of times. *)
let hard_db =
  let g = Graphs.Ugraph.complete 6 in
  let pre, _ = Gadgets.gadget_aa () in
  Ser.to_string (Gadgets.encode pre g)

let job ?(id = "j") ?(db = easy_db) ?(query = "aa") ?deadline ?steps ?memo_cap
    ?(faults = Some "off") () =
  { Proto.id; db; query; budget = { Proto.deadline; steps; memo_cap }; faults }

let quick_cfg =
  {
    Runner.default_config with
    Runner.workers = 2;
    retries = 3;
    backoff = 0.005;
    grace = 0.2;
  }

let verdict_of (r : Proto.reply) = r.Proto.verdict

let is_bounded r = match verdict_of r with Proto.V_bounded _ -> true | _ -> false
let is_exact r = match verdict_of r with Proto.V_exact _ -> true | _ -> false

let failure_kind r =
  match verdict_of r with Proto.V_failed { kind; _ } -> Some kind | _ -> None

(* ---- Proto ---- *)

let test_proto_roundtrip () =
  let jobs =
    [
      job ~id:"plain" ();
      job ~id:"full" ~db:hard_db ~deadline:1.5 ~steps:1000 ~memo_cap:4096
        ~faults:(Some "kill:5") ();
      job ~id:"none" ~faults:None ();
      job ~id:"weird \"id\"\n" ~db:"a\tb\\c\n\"quoted\"" ~query:"a|b*" ();
    ]
  in
  List.iter
    (fun j ->
      match Proto.job_of_json (Proto.job_to_json j) with
      | Ok j' -> check ("job roundtrip " ^ j.Proto.id) true (j = j')
      | Error e -> Alcotest.failf "job %s did not roundtrip: %s" j.Proto.id e)
    jobs;
  let replies =
    [
      {
        Proto.id = "e";
        attempts = 1;
        steps = 12;
        wall_s = 0.25;
        stages = [ ("mincut", 0.2); ("parse", 0.01) ];
        verdict =
          Proto.V_exact
            { value = Value.Finite 3; algorithm = "mincut"; witness = Some [ 1; 2; 7 ] };
      };
      {
        Proto.id = "b";
        attempts = 3;
        steps = 40;
        wall_s = 1.5;
        stages = [];
        verdict =
          Proto.V_bounded
            { lower = Value.Finite 1; upper = Value.Infinite; witness = None; reason = "steps" };
      };
      Proto.failed ~retriable:true ~id:"f" ~kind:"overloaded" "queue full (%d jobs)" 64;
    ]
  in
  List.iter
    (fun r ->
      match Proto.reply_of_json (Proto.reply_to_json r) with
      | Ok r' -> check ("reply roundtrip " ^ r.Proto.id) true (r = r')
      | Error e -> Alcotest.failf "reply %s did not roundtrip: %s" r.Proto.id e)
    replies;
  (* One line per message is what the pipe framing depends on. *)
  List.iter
    (fun j -> check "no raw newline in encoding" false (String.contains (Proto.job_to_json j) '\n'))
    jobs

let test_proto_rejects () =
  List.iter
    (fun s -> check ("rejected: " ^ s) true (Result.is_error (Proto.job_of_json s)))
    [
      "";
      "not json";
      "{\"id\":\"x\"}";
      "{\"id\":1,\"query\":\"a\",\"db\":\"\"}";
      "{\"id\":\"x\",\"query\":\"a\",\"db\":\"\"} trailing";
      "[1,2]";
    ];
  List.iter
    (fun s -> check ("rejected reply: " ^ s) true (Result.is_error (Proto.reply_of_json s)))
    [
      "{}";
      "{\"id\":\"x\",\"attempts\":1,\"steps\":0,\"wall_s\":0,\"outcome\":\"glorious\"}";
      "{\"id\":\"x\",\"attempts\":1,\"steps\":0,\"wall_s\":0,\"outcome\":\"exact\"}";
    ]

let prop_proto_job_roundtrip =
  let open QCheck in
  Test.make ~name:"proto: job json roundtrip" ~count:200
    (quad string string (option (int_range 1 100000)) (option string))
    (fun (id, db, steps, faults) ->
      let j = { Proto.id; db; query = "a*b"; budget = { Proto.no_budget with steps }; faults } in
      Proto.job_of_json (Proto.job_to_json j) = Ok j)

(* ---- Journal ---- *)

let with_temp f =
  let path = Filename.temp_file "rpq_journal" ".jsonl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let test_journal_roundtrip () =
  with_temp (fun path ->
      Sys.remove path;
      check "missing file is empty journal" true (Journal.load path = Ok []);
      let j = Journal.open_append path in
      let r = Proto.failed ~id:"a" ~kind:"crash" "boom" in
      let entries =
        [
          Journal.Started { id = "a"; digest = "d1" };
          Journal.Done { id = "a"; digest = "d1"; reply = r };
          Journal.Started { id = "b"; digest = "d2" };
        ]
      in
      List.iter (Journal.append j) entries;
      Journal.close j;
      check "roundtrip" true (Journal.load path = Ok entries);
      let tbl = Journal.completed entries in
      check "a settled" true (Hashtbl.find_opt tbl "a" = Some ("d1", r));
      check "b pending" true (Hashtbl.find_opt tbl "b" = None))

let test_journal_torn_tail () =
  with_temp (fun path ->
      let j = Journal.open_append path in
      Journal.append j (Journal.Started { id = "a"; digest = "d" });
      Journal.close j;
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"event\":\"done\",\"id\":\"a\",\"jo";
      close_out oc;
      (match Journal.load path with
      | Ok [ Journal.Started { id = "a"; _ } ] -> ()
      | Ok _ -> Alcotest.fail "torn tail should leave exactly the first entry"
      | Error e -> Alcotest.failf "torn tail must be tolerated, got: %s" e);
      (* ...but a malformed line in the middle means this is not our file. *)
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "\n{\"event\":\"start\",\"id\":\"b\",\"job\":\"d\"}\n";
      close_out oc;
      check "mid-file garbage is an error" true (Result.is_error (Journal.load path)))

let test_journal_last_wins () =
  let r1 = Proto.failed ~id:"a" ~kind:"crash" "first" in
  let r2 = Proto.failed ~id:"a" ~kind:"crash" "second" in
  let entries =
    [
      Journal.Done { id = "a"; digest = "d"; reply = r1 };
      Journal.Done { id = "a"; digest = "d"; reply = r2 };
    ]
  in
  check "last done wins" true (Hashtbl.find_opt (Journal.completed entries) "a" = Some ("d", r2))

let test_job_digest () =
  let j1 = job ~id:"x" ~steps:100 () in
  let j2 = job ~id:"x" ~steps:100 () in
  let j3 = job ~id:"x" ~steps:101 () in
  check "digest is stable" true (Journal.job_digest j1 = Journal.job_digest j2);
  check "digest covers the budget" false (Journal.job_digest j1 = Journal.job_digest j3)

(* ---- local execution & policy ---- *)

let test_run_job_locally () =
  (match Runner.run_job_locally (job ~id:"easy" ()) with
  | { Proto.verdict = Proto.V_exact { value = Value.Finite 1; _ }; _ } -> ()
  | r -> Alcotest.failf "easy job: expected exact 1, got %s" (Proto.reply_to_json r));
  check "budgeted hard job is bounded" true
    (is_bounded (Runner.run_job_locally (job ~id:"hard" ~db:hard_db ~steps:50 ())));
  check "bad regex" true
    (failure_kind (Runner.run_job_locally (job ~id:"r" ~query:"((" ())) = Some "bad-job");
  check "bad db" true
    (failure_kind (Runner.run_job_locally (job ~id:"d" ~db:"one two\n" ())) = Some "bad-job");
  check "bad faults spec" true
    (failure_kind (Runner.run_job_locally (job ~id:"f" ~faults:(Some "tick:5x") ()))
    = Some "bad-job")

let test_worker_handler_total () =
  (* The handler must map any line to a reply line. *)
  List.iter
    (fun line ->
      match Proto.reply_of_json (Runner.worker_handler line) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "handler reply does not parse for %S: %s" line e)
    [ Proto.job_to_json (job ()); "garbage"; "" ]

let test_degrade_budget_monotone () =
  let steps_of (b : Proto.budget_spec) =
    match b.Proto.steps with
    | Some s -> s
    | None -> Alcotest.fail "degraded budget lost its step bound"
  in
  (* From no budget at all: the first retry must impose a finite ceiling. *)
  let b1 = Runner.degrade_budget ~degrade:8 Proto.no_budget in
  check "first retry bounds steps" true (b1.Proto.steps <> None);
  (* From there on the squeeze is strictly monotone down to the floor. *)
  let rec chase b n =
    if n = 0 then ()
    else begin
      let b' = Runner.degrade_budget ~degrade:8 b in
      check "steps never increase" true (steps_of b' <= steps_of b);
      check "steps stay positive" true (steps_of b' >= 1);
      (match (b.Proto.deadline, b'.Proto.deadline) with
      | Some d, Some d' ->
          check "deadline never increases" true (d' <= d);
          check "deadline stays positive" true (d' > 0.0)
      | None, None -> ()
      | _ -> Alcotest.fail "deadline presence must be preserved");
      chase b' (n - 1)
    end
  in
  chase { b1 with Proto.deadline = Some 10.0 } 20;
  (* The squeeze reaches a budget small enough to exhaust before any
     fault tick >= 2 — the convergence the retry loop relies on. *)
  let rec floor_of b =
    let b' = Runner.degrade_budget ~degrade:8 b in
    if steps_of b' = steps_of b then steps_of b else floor_of b'
  in
  check "degradation reaches the floor" true (floor_of b1 = 1)

(* ---- supervision sweeps ---- *)

let run_batch ?journal ?(cfg = quick_cfg) jobs = Runner.run_batch ?journal cfg jobs

let test_kill_sweep () =
  (* Workers self-SIGKILL at assorted ticks; with a step budget that
     degrades 1000 -> 125 -> 15 over the retries, every job must settle as
     Bounded (exhaustion preempts the fault tick) — and the supervisor
     must survive the whole barrage. *)
  let jobs =
    List.map
      (fun n ->
        job
          ~id:(Printf.sprintf "kill%d" n)
          ~db:hard_db ~steps:1000
          ~faults:(Some (Printf.sprintf "kill:%d" n))
          ())
      [ 20; 50; 200 ]
    @ [ job ~id:"easy" (); job ~id:"hard" ~db:hard_db ~steps:400 () ]
  in
  let replies, stats = run_batch jobs in
  check "no structured failures" true (stats.Runner.failures = 0);
  List.iter
    (fun (r : Proto.reply) ->
      match r.Proto.id with
      | "easy" ->
          check "easy stays exact" true (is_exact r);
          check "easy first try" true (r.Proto.attempts = 1)
      | "hard" -> check "hard is bounded" true (is_bounded r)
      | _ ->
          check (r.Proto.id ^ " settles bounded") true (is_bounded r);
          check (r.Proto.id ^ " needed retries") true (r.Proto.attempts > 1))
    replies

let test_kill_every_tick_fails_structured () =
  (* kill:1 fires on the very first tick: no budget can preempt it, so
     after all retries the job must fail — structurally, not by killing
     the supervisor. *)
  let replies, stats = run_batch [ job ~id:"k1" ~db:hard_db ~steps:1000 ~faults:(Some "kill:1") () ] in
  check "one failure" true (stats.Runner.failures = 1);
  match replies with
  | [ r ] ->
      check "kind is crash" true (failure_kind r = Some "crash");
      check "all attempts spent" true (r.Proto.attempts = 1 + quick_cfg.Runner.retries)
  | _ -> Alcotest.fail "expected one reply"

let test_wedge_timeout_path () =
  (* A wedged worker blocks SIGTERM, so only the SIGKILL-after-grace path
     can reclaim it; the budget squeeze then settles the job as Bounded. *)
  let cfg = { quick_cfg with Runner.retries = 2; job_timeout = Some 0.4 } in
  let replies, stats =
    run_batch ~cfg
      [
        job ~id:"wedge" ~db:hard_db ~steps:1000 ~faults:(Some "wedge:50") ();
        job ~id:"easy" ();
      ]
  in
  check "no failures" true (stats.Runner.failures = 0);
  List.iter
    (fun (r : Proto.reply) ->
      match r.Proto.id with
      | "wedge" ->
          check "wedge settles bounded" true (is_bounded r);
          check "wedge needed retries" true (r.Proto.attempts > 1)
      | _ -> check "easy stays exact" true (is_exact r))
    replies

let test_batch_order_and_dup () =
  let jobs = List.init 9 (fun i -> job ~id:(Printf.sprintf "j%d" i) ()) in
  let replies, _ = run_batch jobs in
  check "replies in input order" true
    (List.map (fun (r : Proto.reply) -> r.Proto.id) replies
    = List.map (fun (j : Proto.job) -> j.Proto.id) jobs);
  check "duplicate ids rejected" true
    (try
       ignore (run_batch [ job ~id:"dup" (); job ~id:"dup" () ]);
       false
     with Invalid_argument _ -> true)

let test_journal_resume_identical () =
  with_temp (fun path ->
      Sys.remove path;
      let jobs =
        [
          job ~id:"a" ();
          job ~id:"b" ~db:hard_db ~steps:300 ();
          job ~id:"c" ~db:hard_db ~steps:1000 ~faults:(Some "kill:50") ();
          job ~id:"bad" ~query:"((" ();
        ]
      in
      let replies1, stats1 = run_batch ~journal:path jobs in
      check "first run computes everything" true (stats1.Runner.ran = 4 && stats1.Runner.resumed = 0);
      (* Re-verification exercises the witnesses, so run resume at the
         `cheap` check level regardless of ambient RPQ_CHECK. *)
      let replies2, stats2 =
        Check.with_level Check.Cheap (fun () -> run_batch ~journal:path jobs)
      in
      check "resume skips everything" true (stats2.Runner.ran = 0 && stats2.Runner.resumed = 4);
      check "resumed replies identical (modulo wall clock)" true
        (List.for_all2 Proto.reply_equal_ignoring_time replies1 replies2);
      (* A changed job (same id, different budget) must be recomputed. *)
      let jobs' = List.map (fun (j : Proto.job) ->
          if j.Proto.id = "b" then { j with Proto.budget = { j.Proto.budget with Proto.steps = Some 301 } }
          else j) jobs
      in
      let _, stats3 = run_batch ~journal:path jobs' in
      check "edited job recomputed" true (stats3.Runner.ran = 1 && stats3.Runner.resumed = 3))

let test_journal_resume_partial () =
  with_temp (fun path ->
      Sys.remove path;
      let early = [ job ~id:"a" (); job ~id:"b" ~db:hard_db ~steps:300 () ] in
      let all = early @ [ job ~id:"c" (); job ~id:"d" ~db:hard_db ~steps:200 () ] in
      let replies1, _ = run_batch ~journal:path early in
      (* Simulates a SIGKILLed batch: the journal holds two settled jobs,
         the rerun sees the full job list. *)
      let replies2, stats = run_batch ~journal:path all in
      check "only the new jobs ran" true (stats.Runner.ran = 2 && stats.Runner.resumed = 2);
      List.iteri
        (fun i r1 ->
          check "recorded prefix reused" true
            (Proto.reply_equal_ignoring_time r1 (List.nth replies2 i)))
        replies1)

let test_journal_rejects_corrupt_answer () =
  with_temp (fun path ->
      Sys.remove path;
      let jobs = [ job ~id:"a" () ] in
      let _ = run_batch ~journal:path jobs in
      (* Tamper: claim the answer was exact 1 with an empty witness. An
         empty removal set cannot falsify a satisfied query, so cheap
         re-verification must throw the record away and recompute. *)
      let forged =
        {
          Proto.id = "a";
          attempts = 1;
          steps = 0;
          wall_s = 0.0;
          stages = [];
          verdict =
            Proto.V_exact { value = Value.Finite 1; algorithm = "forged"; witness = Some [] };
        }
      in
      let j = Journal.open_append path in
      Journal.append j
        (Journal.Done { id = "a"; digest = Journal.job_digest (List.nth jobs 0); reply = forged });
      Journal.close j;
      let replies, stats =
        Check.with_level Check.Cheap (fun () -> run_batch ~journal:path jobs)
      in
      check "forged answer not reused" true (stats.Runner.ran = 1 && stats.Runner.resumed = 0);
      (match replies with
      | [ r ] -> check "recomputed answer is sound" true (Runner.verify_reply (List.nth jobs 0) r)
      | _ -> Alcotest.fail "expected one reply");
      (* With checking off, the (well-formed) record is taken at face
         value: resume must not pay verification cost unless asked. *)
      let _, stats_off =
        Check.with_level Check.Off (fun () -> run_batch ~journal:path jobs)
      in
      check "RPQ_CHECK=off trusts the journal" true (stats_off.Runner.resumed = 1))

let test_verify_reply () =
  let j = job ~id:"v" () in
  let good = Runner.run_job_locally j in
  check "honest reply verifies" true (Runner.verify_reply j good);
  let forged =
    { good with Proto.verdict = Proto.V_exact { value = Value.Finite 1; algorithm = "x"; witness = Some [] } }
  in
  check "forged witness fails" false (Runner.verify_reply j forged);
  check "error replies pass vacuously" true
    (Runner.verify_reply j (Proto.failed ~id:"v" ~kind:"crash" "boom"))

(* ---- serve ---- *)

let test_serve_roundtrip_and_shedding () =
  let in_path = Filename.temp_file "rpq_serve_in" ".jsonl" in
  let out_path = Filename.temp_file "rpq_serve_out" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ in_path; out_path ])
    (fun () ->
      (* One worker, queue of one: the wedge job occupies the worker for
         its full (short) timeout, so of the easy jobs behind it at least
         one must be shed with a retriable `overloaded'. *)
      let jobs =
        job ~id:"w" ~db:hard_db ~steps:1000 ~faults:(Some "wedge:10") ()
        :: List.init 4 (fun i -> job ~id:(Printf.sprintf "e%d" i) ())
      in
      Out_channel.with_open_text in_path (fun oc ->
          List.iter (fun j -> output_string oc (Proto.job_to_json j ^ "\n")) jobs;
          output_string oc "this is not json\n");
      let cfg =
        {
          quick_cfg with
          Runner.workers = 1;
          retries = 0;
          queue_cap = 1;
          job_timeout = Some 0.3;
        }
      in
      In_channel.with_open_text in_path (fun ic ->
          Out_channel.with_open_text out_path (fun oc -> Runner.serve cfg ic oc));
      let replies =
        In_channel.with_open_text out_path In_channel.input_lines
        |> List.map (fun line ->
               match Proto.reply_of_json line with
               | Ok r -> r
               | Error e -> Alcotest.failf "unparseable serve reply %S: %s" line e)
      in
      check "every input line got a reply" true (List.length replies = 6);
      let by_kind k =
        List.length (List.filter (fun r -> failure_kind r = Some k) replies)
      in
      check "wedge timed out (retries=0)" true (by_kind "timeout" = 1);
      check "overload shedding happened" true (by_kind "overloaded" >= 1);
      check "bad line answered structurally" true (by_kind "bad-job" = 1);
      List.iter
        (fun r ->
          match verdict_of r with
          | Proto.V_failed { kind = "overloaded"; retriable; _ } ->
              check "overloaded is retriable" true retriable
          | _ -> ())
        replies;
      check "whatever was admitted besides the wedge ran exactly" true
        (List.for_all
           (fun (r : Proto.reply) ->
             if String.length r.Proto.id > 0 && r.Proto.id.[0] = 'e' then
               is_exact r || failure_kind r = Some "overloaded"
             else true)
           replies))

let () =
  Alcotest.run "runner"
    [
      ( "proto",
        [
          Alcotest.test_case "roundtrips" `Quick test_proto_roundtrip;
          Alcotest.test_case "rejects" `Quick test_proto_rejects;
          QCheck_alcotest.to_alcotest prop_proto_job_roundtrip;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_journal_torn_tail;
          Alcotest.test_case "last done wins" `Quick test_journal_last_wins;
          Alcotest.test_case "job digest" `Quick test_job_digest;
        ] );
      ( "policy",
        [
          Alcotest.test_case "run_job_locally" `Quick test_run_job_locally;
          Alcotest.test_case "worker handler is total" `Quick test_worker_handler_total;
          Alcotest.test_case "degradation is monotone" `Quick test_degrade_budget_monotone;
          Alcotest.test_case "verify_reply" `Quick test_verify_reply;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "kill sweep degrades to bounds" `Quick test_kill_sweep;
          Alcotest.test_case "kill:1 fails structurally" `Quick test_kill_every_tick_fails_structured;
          Alcotest.test_case "wedge takes the sigkill path" `Quick test_wedge_timeout_path;
          Alcotest.test_case "reply order and duplicate ids" `Quick test_batch_order_and_dup;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "resume is identical" `Quick test_journal_resume_identical;
          Alcotest.test_case "partial journal" `Quick test_journal_resume_partial;
          Alcotest.test_case "corrupt answers rejected" `Quick test_journal_rejects_corrupt_answer;
        ] );
      ("serve", [ Alcotest.test_case "roundtrip + shedding" `Quick test_serve_roundtrip_and_shedding ]);
    ]
