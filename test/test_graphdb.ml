(* Tests for graph databases and RPQ evaluation. *)
open Graphdb

let lang = Automata.Lang.of_string
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let triangle_db () =
  (* 0 -a-> 1 -b-> 2 -c-> 0 *)
  Db.make ~nnodes:3 ~facts:[ (0, 'a', 1); (1, 'b', 2); (2, 'c', 0) ]

let test_db_basics () =
  let d = triangle_db () in
  check_int "nodes" 3 (Db.nnodes d);
  check_int "facts" 3 (Db.fact_count d);
  check_int "live" 3 (Db.live_count d);
  check_int "total mult" 3 (Db.total_mult d);
  check "alphabet" true (Automata.Cset.equal (Db.alphabet d) (Automata.Cset.of_string "abc"));
  check_int "out edges of 0" 1 (List.length (Db.out_edges d 0))

let test_db_bag () =
  let d = Db.make_bag ~nnodes:2 ~facts:[ (0, 'a', 1, 3); (0, 'a', 1, 2); (0, 'b', 1, 1) ] in
  check_int "merged facts" 2 (Db.fact_count d);
  check_int "merged mult" 6 (Db.total_mult d);
  let d1 = Db.with_unit_mults d in
  check_int "unit mults" 2 (Db.total_mult d1);
  check "negative mult rejected" true
    (try
       ignore (Db.make_bag ~nnodes:1 ~facts:[ (0, 'a', 0, 0) ]);
       false
     with Invalid_argument _ -> true)

let test_restrict () =
  let d = triangle_db () in
  let d' = Db.remove d [ 0 ] in
  check_int "one dead" 2 (Db.live_count d');
  check "dead" false (Db.is_live d' 0);
  check "ids stable" true (Db.fact d' 1 = Db.fact d 1);
  check_int "original untouched" 3 (Db.live_count d)

let test_acyclic () =
  check "triangle cyclic" false (Db.is_acyclic (triangle_db ()));
  check "acyclic after removal" true (Db.is_acyclic (Db.remove (triangle_db ()) [ 2 ]));
  check "dag" true
    (Db.is_acyclic (Db.make ~nnodes:3 ~facts:[ (0, 'a', 1); (0, 'a', 2); (1, 'b', 2) ]))

let test_reverse () =
  let d = Db.reverse (triangle_db ()) in
  check "reversed fact" true ((Db.fact d 0).Db.src = 1 && (Db.fact d 0).Db.dst = 0)

let test_builder () =
  let b = Db.Builder.create () in
  Db.Builder.add b "u" 'a' "v";
  Db.Builder.add b ~mult:4 "v" 'b' "w";
  Db.Builder.add_word_path b "u" "xyz" "w";
  let d = Db.Builder.build b in
  check_int "nodes" 5 (Db.nnodes d);
  check_int "facts" 5 (Db.fact_count d);
  check_int "mult" 8 (Db.total_mult d);
  check "path exists" true (Eval.satisfies d (lang "xyz"))

let test_satisfies () =
  let d = triangle_db () in
  List.iter (fun s -> check ("sat " ^ s) true (Eval.satisfies d (lang s)))
    [ "ab"; "bc"; "ca"; "abc"; "abcabc"; "a|zz"; "(abc)*ab" ];
  List.iter (fun s -> check ("unsat " ^ s) false (Eval.satisfies d (lang s)))
    [ "ba"; "aa"; "ac"; "acb|zz" ];
  (* ε ∈ L: always satisfied, even by the empty database *)
  check "eps always" true (Eval.satisfies (Db.make ~nnodes:0 ~facts:[]) (lang "~|ab"));
  check "empty lang" false (Eval.satisfies d (lang "!"))

let test_walks_repeat_facts () =
  (* A walk may loop: abcabc around the triangle reuses all three facts. *)
  let d = triangle_db () in
  match Eval.shortest_witness d (lang "abcab") with
  | Some w ->
      check_int "walk length" 5 (List.length w);
      check_int "distinct facts" 3 (List.length (List.sort_uniq compare w))
  | None -> Alcotest.fail "witness expected"

let test_shortest_witness () =
  let d =
    Db.make ~nnodes:5 ~facts:[ (0, 'a', 1); (1, 'b', 2); (0, 'a', 3); (3, 'x', 4); (4, 'b', 2) ]
  in
  (match Eval.shortest_witness d (lang "ab|axb") with
  | Some w -> check_int "shortest is ab" 2 (List.length w)
  | None -> Alcotest.fail "witness expected");
  check "eps witness" true (Eval.shortest_witness d (lang "~") = Some []);
  check "no witness" true (Eval.shortest_witness d (lang "zz") = None)

let test_witness_is_match () =
  (* The witness walk's labels must spell a word of L, in order. *)
  let d = Generate.random_acyclic ~nnodes:8 ~nfacts:18 ~alphabet:[ 'a'; 'b'; 'x' ] ~seed:7 () in
  match Eval.shortest_witness d (lang "ax*b") with
  | None -> check "maybe unsat" true (not (Eval.satisfies d (lang "ax*b")))
  | Some w ->
      let word = String.init (List.length w) (fun i -> (Db.fact d (List.nth w i)).Db.label) in
      check "labels form word" true (Automata.Nfa.accepts (lang "ax*b") word);
      (* consecutive facts must be adjacent *)
      let rec adj = function
        | f1 :: (f2 :: _ as rest) ->
            (Db.fact d f1).Db.dst = (Db.fact d f2).Db.src && adj rest
        | _ -> true
      in
      check "adjacent" true (adj w)

let test_matches () =
  let d = Db.make ~nnodes:4 ~facts:[ (0, 'a', 1); (1, 'a', 2); (2, 'a', 3) ] in
  let ms = Eval.all_matches d (lang "aa") in
  check_int "two aa matches" 2 (List.length ms);
  let h = Eval.match_hypergraph d (lang "aa") in
  check_int "hyperedges" 2 (Hypergraph.edge_count h);
  check_int "vertices" 3 (Hypergraph.vertex_count h);
  (* cyclic db with infinite language is rejected *)
  check "cyclic+infinite rejected" true
    (try
       ignore (Eval.all_matches (triangle_db ()) (lang "(abc)*ab"));
       false
     with Invalid_argument _ -> true);
  (* but cyclic with finite language works *)
  check_int "cyclic finite" 1 (List.length (Eval.all_matches (triangle_db ()) (lang "abcab")))

let qcheck = QCheck_alcotest.to_alcotest

let arb_db =
  QCheck.make
    ~print:(fun (d : Db.t) -> Format.asprintf "%a" Db.pp d)
    QCheck.Gen.(
      let* seed = int_bound 100000 in
      let* nnodes = int_range 2 6 in
      let* nfacts = int_range 1 10 in
      return (Generate.random ~nnodes ~nfacts ~alphabet:[ 'a'; 'b'; 'c' ] ~seed ()))

let arb_word =
  QCheck.make
    ~print:(fun w -> w)
    QCheck.Gen.(map Automata.Word.of_list (list_size (int_range 1 4) (oneofl [ 'a'; 'b'; 'c' ])))

(* Reference: does the database contain a w-walk? Direct DFS on the word. *)
let ref_has_word_walk d w =
  let rec go v i =
    if i = String.length w then true
    else
      List.exists
        (fun (_, (f : Db.fact)) -> f.Db.label = w.[i] && go f.Db.dst (i + 1))
        (Db.out_edges d v)
  in
  List.exists (fun v -> go v 0) (List.init (Db.nnodes d) Fun.id)

let prop_satisfies_vs_naive =
  QCheck.Test.make ~name:"product evaluation = naive walk search (single word)" ~count:300
    (QCheck.pair arb_db arb_word)
    (fun (d, w) -> Eval.satisfies d (Automata.Nfa.of_words [ w ]) = ref_has_word_walk d w)

let prop_matches_are_matches =
  QCheck.Test.make ~name:"every enumerated match hits the query" ~count:100
    (QCheck.pair arb_db arb_word)
    (fun (d, w) ->
      let l = Automata.Nfa.of_words [ w ] in
      let ms = Eval.all_matches d l in
      List.for_all
        (fun m ->
          (* keep only this match's facts: the query must still hold *)
          let d' = Db.restrict d ~removed:(fun id -> not (Hypergraph.Iset.mem id m)) in
          Eval.satisfies d' l)
        ms)

let test_serialize_roundtrip () =
  let d = Db.make_bag ~nnodes:3 ~facts:[ (0, 'a', 1, 2); (1, 'b', 2, 1) ] in
  match Serialize.of_string (Serialize.to_string d) with
  | Ok (d2, _) ->
      check_int "facts" (Db.fact_count d) (Db.fact_count d2);
      check_int "total mult" (Db.total_mult d) (Db.total_mult d2)
  | Error e -> Alcotest.fail e

let test_serialize_errors () =
  check "bad line" true (Result.is_error (Serialize.of_string "a bc"));
  check "bad mult" true (Result.is_error (Serialize.of_string "u a v zero"));
  check "comments ok" true (Result.is_ok (Serialize.of_string "# hi\nu a v\n"));
  (* non-positive multiplicities are rejected, not silently accepted *)
  check "mult 0" true (Result.is_error (Serialize.of_string "u a v 0"));
  check "mult -2" true (Result.is_error (Serialize.of_string "u a v -2"));
  (* errors carry the 1-based line number so the CLI can report file:line *)
  (match Serialize.parse "u a v\n\nx b" with
  | Error e -> check "line number" true (String.length e >= 2 && String.sub e 0 2 = "3:")
  | Ok _ -> Alcotest.fail "malformed line accepted");
  match Serialize.parse "u a v\nv b w 2\n" with
  | Error e -> Alcotest.fail e
  | Ok p ->
      check "node_id known" true (p.Serialize.node_id "v" <> None);
      check "node_id unknown" true (p.Serialize.node_id "zz" = None);
      check "node_name inverts node_id" true
        (match p.Serialize.node_id "w" with
        | Some id -> p.Serialize.node_name id = "w"
        | None -> false)

let test_dot_export () =
  let d = Db.make ~nnodes:2 ~facts:[ (0, 'a', 1) ] in
  let dot = Serialize.to_dot d in
  check "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let a = Automata.Dot.of_nfa (lang "ab") in
  check "nfa dot" true (String.sub a 0 7 = "digraph");
  let df = Automata.Dot.of_dfa (Automata.Dfa.of_nfa (lang "ab")) in
  check "dfa dot" true (String.sub df 0 7 = "digraph")

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"serialize/parse roundtrip preserves facts" ~count:100 arb_db (fun d ->
      match Serialize.of_string (Serialize.to_string d) with
      | Ok (d2, _) -> Db.fact_count d = Db.fact_count d2 && Db.total_mult d = Db.total_mult d2
      | Error _ -> false)

let () =
  Alcotest.run "graphdb"
    [
      ( "db",
        [
          Alcotest.test_case "basics" `Quick test_db_basics;
          Alcotest.test_case "bag" `Quick test_db_bag;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "acyclic" `Quick test_acyclic;
          Alcotest.test_case "reverse" `Quick test_reverse;
          Alcotest.test_case "builder" `Quick test_builder;
        ] );
      ( "eval",
        [
          Alcotest.test_case "satisfies" `Quick test_satisfies;
          Alcotest.test_case "walks repeat facts" `Quick test_walks_repeat_facts;
          Alcotest.test_case "shortest witness" `Quick test_shortest_witness;
          Alcotest.test_case "witness is a match" `Quick test_witness_is_match;
          Alcotest.test_case "matches" `Quick test_matches;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "errors" `Quick test_serialize_errors;
          Alcotest.test_case "dot" `Quick test_dot_export;
        ] );
      ( "properties",
        List.map qcheck
          [ prop_satisfies_vs_naive; prop_matches_are_matches; prop_serialize_roundtrip ] );
    ]
