(* The certificate conformance corpus and checker-hardening suite.

   Three layers of assurance that the independent checker is neither
   credulous nor paranoid:

   - the committed corpus under certs/: every accept_*.jsonl line (real
     CLI output across all solver paths) must check, every
     reject_*.jsonl line (a hand-tampered certificate per failure mode
     named in the issue) must be refused;
   - programmatic tampers: solver-produced replies with their
     certificates stripped, swapped, or value-shifted must be refused;
   - a seeded byte-flip fuzzer: >= 200 single-byte mutations inside the
     cert block of corpus lines, every one refused — a mutated
     certificate that still checks would be a soundness hole. *)

open Resilience
module Ser = Graphdb.Serialize
module Proto = Cert.Proto
module Certificate = Cert.Certificate
module Checker = Cert.Checker

let check = Alcotest.(check bool)

(* ---- fixtures: replies produced by the real solver stack ---- *)

let easy_db = "s a m\nm a t\n"
let mix_db = "s a m\nm b t\ns b u\nu a t\n"
let submod_db = "s a m\nm b n\nn c t\ns b u\nu e t\n"

(* The aa gadget on K6 (the vertex-cover reduction of Definition 4.5):
   large enough that a 500-step budget settles it as bounded. *)
let hard_db =
  let g = Graphs.Ugraph.complete 6 in
  let pre, _ = Gadgets.gadget_aa () in
  Ser.to_string (Gadgets.encode pre g)

let job ?(id = "j") ?(db = easy_db) ?(query = "aa") ?steps () =
  {
    Proto.id;
    db;
    query;
    budget = { Proto.deadline = None; steps; memo_cap = None };
    faults = Some "off";
    deadline_ms = None;
    priority = Proto.default_priority;
    trace = None;
  }

let solve ?id ?db ?steps query = Runner.run_job_locally (job ?id ?db ?steps ~query ())

let ok_or_msg = function Ok _ -> "ok" | Error e -> e

(* Every solver path's reply — local cut, BCL cut, hitting-set bounds,
   submodular opaque, trivial — carries a certificate that re-checks,
   and the error reply (no certificate) checks too. *)
let test_generated_replies_check () =
  List.iter
    (fun (label, r) ->
      Alcotest.(check string)
        (label ^ " checks") "ok"
        (ok_or_msg (Checker.check_reply r)))
    [
      ("local mincut", solve ~db:mix_db "ab");
      ("bcl mincut", solve ~db:mix_db "ab|ba");
      ("hitting set", solve "aa");
      ("submodular", solve ~db:submod_db "abc|be");
      ("trivial epsilon", solve "a*");
      ("error reply", solve "((");
    ]

let test_bounded_reply_checks () =
  let r = solve ~id:"b" ~db:hard_db ~steps:500 "aa" in
  (match r.Proto.verdict with
  | Proto.V_bounded _ -> ()
  | v -> Alcotest.failf "expected a bounded verdict, got %s" (Proto.verdict_name v));
  Alcotest.(check string) "bounded reply checks" "ok" (ok_or_msg (Checker.check_reply r))

(* ---- the committed corpus ---- *)

(* Under `dune runtest` the cwd is the test directory itself; under
   `dune exec` it is the project root. *)
let corpus_dir =
  if Sys.file_exists "certs" then "certs" else Filename.concat "test" "certs"

let corpus_files prefix =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > String.length prefix
         && String.sub f 0 (String.length prefix) = prefix
         && Filename.check_suffix f ".jsonl")
  |> List.sort compare
  |> List.map (Filename.concat corpus_dir)

let lines_of file =
  In_channel.with_open_text file In_channel.input_lines
  |> List.filter (fun l -> String.trim l <> "")

let test_corpus_accepts () =
  let files = corpus_files "accept_" in
  check "accept corpus present" true (List.length files >= 4);
  List.iter
    (fun file ->
      List.iteri
        (fun i line ->
          match Checker.check_line line with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "%s:%d rejected: %s" file (i + 1) e)
        (lines_of file))
    files

let test_corpus_rejects () =
  let files = corpus_files "reject_" in
  check "reject corpus present" true (List.length files >= 6);
  List.iter
    (fun file ->
      List.iteri
        (fun i line ->
          match Checker.check_line line with
          | Error _ -> ()
          | Ok what ->
              Alcotest.failf "%s:%d accepted a tampered %s line" file (i + 1) what)
        (lines_of file))
    files

(* ---- programmatic tampers ---- *)

let shift_value = function
  | Cert.Value.Finite n -> Cert.Value.Finite (n + 1)
  | Cert.Value.Infinite -> Cert.Value.Finite 0

let test_programmatic_tampers () =
  let cut_reply = solve ~db:mix_db "ab" in
  let bounds_reply = solve "aa" in
  let refuse label r =
    match Checker.check_reply r with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "checker accepted %s" label
  in
  refuse "a stripped certificate" { cut_reply with Proto.cert = None };
  refuse "a cut certificate on a hitting-set reply"
    { bounds_reply with Proto.cert = cut_reply.Proto.cert };
  refuse "a bounds certificate on a mincut reply"
    { cut_reply with Proto.cert = bounds_reply.Proto.cert };
  (match cut_reply.Proto.verdict with
  | Proto.V_exact { value; algorithm; witness } ->
      refuse "a shifted exact value"
        {
          cut_reply with
          Proto.verdict = Proto.V_exact { value = shift_value value; algorithm; witness };
        }
  | _ -> Alcotest.fail "local solve did not settle exactly");
  match bounds_reply.Proto.verdict with
  | Proto.V_exact { value; algorithm; witness = Some (_ :: _ as w) } ->
      refuse "a padded witness"
        {
          bounds_reply with
          Proto.verdict =
            Proto.V_exact { value; algorithm; witness = Some (w @ [ 997 ]) };
        }
  | _ -> Alcotest.fail "hitting-set solve did not settle with a witness"

(* Unknown schema versions must be refused outright, not half-parsed. *)
let test_unknown_version_rejected () =
  let r = solve ~db:mix_db "ab" in
  let json = Proto.reply_to_json r in
  check "current version accepts" true (Result.is_ok (Checker.check_line json));
  let prefix = "{\"v\":1," in
  let pl = String.length prefix in
  check "the v field leads the reply" true
    (String.length json > pl && String.sub json 0 pl = prefix);
  let bumped = "{\"v\":9," ^ String.sub json pl (String.length json - pl) in
  check "unknown version rejects" true (Result.is_error (Checker.check_line bumped))

(* ---- certificate JSON roundtrip ---- *)

let test_cert_roundtrip () =
  List.iter
    (fun (label, r) ->
      match r.Proto.cert with
      | None -> Alcotest.failf "%s reply carries no certificate" label
      | Some c -> (
          match Certificate.of_json (Certificate.to_json c) with
          | Error e -> Alcotest.failf "%s cert does not roundtrip: %s" label e
          | Ok c' ->
              Alcotest.(check string)
                (label ^ " roundtrips through JSON")
                (Certificate.to_json c) (Certificate.to_json c')))
    [
      ("cut", solve ~db:mix_db "ab");
      ("bounds", solve "aa");
      ("opaque", solve ~db:submod_db "abc|be");
      ("trivial", solve "a*");
    ]

(* ---- seeded byte-flip fuzzer ---- *)

(* The span of the cert object in a compact JSON line: from the opening
   brace after "cert": to its matched closing brace. The scan respects
   string literals and backslash escapes. *)
let cert_span line =
  let marker = "\"cert\":{" in
  let ml = String.length marker in
  let n = String.length line in
  let rec find i =
    if i + ml > n then None
    else if String.sub line i ml = marker then Some (i + ml - 1)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let rec close i depth in_str =
        if i >= n then None
        else
          match line.[i] with
          | '\\' when in_str -> close (i + 2) depth in_str
          | '"' -> close (i + 1) depth (not in_str)
          | '{' when not in_str -> close (i + 1) (depth + 1) in_str
          | '}' when not in_str ->
              if depth = 1 then Some (start, i) else close (i + 1) (depth - 1) in_str
          | _ -> close (i + 1) depth in_str
      in
      close start 0 false

let flip_one prng line (lo, hi) =
  let pos = lo + Invariant.Prng.int prng (hi - lo + 1) in
  let old = line.[pos] in
  let rec fresh () =
    (* printable ASCII keeps the mutation inside the JSON token
       alphabet, where a silent accept would be most plausible *)
    let c = Char.chr (32 + Invariant.Prng.int prng 95) in
    if c = old then fresh () else c
  in
  let b = Bytes.of_string line in
  Bytes.set b pos (fresh ());
  Bytes.to_string b

let test_byte_flip_fuzzer () =
  let lines =
    List.concat_map lines_of (corpus_files "accept_")
    |> List.filter (fun l -> cert_span l <> None)
  in
  check "corpus has certified lines" true (List.length lines >= 6);
  let per_line = 1 + (200 / List.length lines) in
  let mutations = ref 0 in
  List.iteri
    (fun li line ->
      let span =
        match cert_span line with Some s -> s | None -> Alcotest.fail "span vanished"
      in
      for s = 0 to per_line - 1 do
        let prng = Invariant.Prng.make ((li * 1000) + s) in
        let mutant = flip_one prng line span in
        incr mutations;
        match Checker.check_line mutant with
        | Error _ -> ()
        | Ok what ->
            Alcotest.failf
              "seed %d/%d: a byte-flipped %s certificate was accepted: %s" li s what
              mutant
      done)
    lines;
  check "at least 200 mutations exercised" true (!mutations >= 200)

let () =
  Alcotest.run "certcheck"
    [
      ( "generated",
        [
          Alcotest.test_case "all solver paths check" `Quick test_generated_replies_check;
          Alcotest.test_case "bounded reply checks" `Quick test_bounded_reply_checks;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "accept corpus" `Quick test_corpus_accepts;
          Alcotest.test_case "reject corpus" `Quick test_corpus_rejects;
        ] );
      ( "tampering",
        [
          Alcotest.test_case "programmatic tampers" `Quick test_programmatic_tampers;
          Alcotest.test_case "unknown version" `Quick test_unknown_version_rejected;
          Alcotest.test_case "cert json roundtrip" `Quick test_cert_roundtrip;
          Alcotest.test_case "byte-flip fuzzer" `Quick test_byte_flip_fuzzer;
        ] );
    ]
