(* Tests for hypergraphs, condensation (Claim 4.8) and hitting sets. *)
module H = Hypergraph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk vs es = H.make ~vertices:vs ~edges:es

let test_make () =
  let h = mk [ 1; 2; 3 ] [ [ 1; 2 ]; [ 2; 3 ]; [ 2; 1 ] ] in
  check_int "dedup edges" 2 (H.edge_count h);
  check_int "vertices" 3 (H.vertex_count h);
  check "bad vertex rejected" true
    (try
       ignore (mk [ 1 ] [ [ 2 ] ]);
       false
     with Invalid_argument _ -> true)

let test_edge_domination () =
  (* {1,2} ⊂ {1,2,3}: the superset is removed *)
  let h = H.condense (mk [ 1; 2; 3 ] [ [ 1; 2 ]; [ 1; 2; 3 ] ]) in
  check "edges" true (H.edges h = [ [ 1; 2 ] ] || H.edges h = [ [ 1 ] ] || H.edges h = [ [ 2 ] ])

let test_node_domination () =
  (* vertex 3 occurs only where 2 occurs: it is dominated *)
  let h = H.condense ~protected:[ 1; 2 ] (mk [ 1; 2; 3 ] [ [ 1; 2; 3 ]; [ 2; 3 ] ]) in
  check "3 removed" true (not (List.mem 3 (H.vertices h)))

let test_protected () =
  let h0 = mk [ 1; 2 ] [ [ 1; 2 ] ] in
  let h = H.condense ~protected:[ 1; 2 ] h0 in
  check "protected survive" true (List.mem 1 (H.vertices h) && List.mem 2 (H.vertices h));
  check "edge intact" true (H.edges h = [ [ 1; 2 ] ])

let test_odd_path () =
  let path = mk [ 1; 2; 3; 4 ] [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ] in
  check "odd path" true (H.is_odd_path path ~src:1 ~dst:4);
  check "wrong endpoints" false (H.is_odd_path path ~src:1 ~dst:3);
  let even = mk [ 1; 2; 3 ] [ [ 1; 2 ]; [ 2; 3 ] ] in
  check "even path" false (H.is_odd_path even ~src:1 ~dst:3);
  let tri = mk [ 1; 2; 3 ] [ [ 1; 2 ]; [ 2; 3 ]; [ 1; 3 ] ] in
  check "cycle" false (H.is_odd_path tri ~src:1 ~dst:2);
  let big = mk [ 1; 2; 3 ] [ [ 1; 2; 3 ] ] in
  check "size-3 edge" false (H.is_odd_path big ~src:1 ~dst:2);
  (* isolated vertices are tolerated *)
  let iso = mk [ 0; 1; 2; 3; 4 ] [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ] in
  check "isolated ok" true (H.is_odd_path iso ~src:1 ~dst:4)

let test_path_endpoints () =
  match H.path_endpoints_length (mk [ 1; 2; 3; 4 ] [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ]) with
  | Some (a, b, len) ->
      check "endpoints" true ((a, b) = (1, 4) || (a, b) = (4, 1));
      check_int "length" 3 len
  | None -> Alcotest.fail "expected a path"

let test_hitting_set () =
  let h = mk [ 1; 2; 3; 4 ] [ [ 1; 2 ]; [ 2; 3 ]; [ 3; 4 ] ] in
  let v, s = H.min_hitting_set h in
  check_int "value" 2 v;
  check "witness hits" true
    (List.for_all (fun e -> List.exists (fun x -> List.mem x s) e) (H.edges h));
  (* weighted: making 2 expensive steers the optimum to {1, 3} *)
  let w v = if v = 2 then 10 else 1 in
  let v2, _ = H.min_hitting_set ~weights:w h in
  check_int "weighted value" 2 v2;
  check "empty edge rejected" true
    (try
       ignore (H.min_hitting_set (mk [ 1 ] [ [] ]));
       false
     with Invalid_argument _ -> true)

let test_hitting_set_empty () =
  let v, s = H.min_hitting_set (mk [ 1; 2 ] []) in
  check_int "no edges" 0 v;
  check "empty witness" true (s = [])

let test_trace () =
  let h = mk [ 1; 2; 3 ] [ [ 1; 2 ]; [ 1; 2; 3 ] ] in
  let c, steps = H.condense_trace ~protected:[ 1 ] h in
  check "some steps" true (steps <> []);
  check "edge-domination recorded" true
    (List.exists (function H.Removed_edge [ 1; 2; 3 ] -> true | _ -> false) steps);
  (* replaying the trace is consistent: the condensed result equals condense *)
  check "same as condense" true (H.edges c = H.edges (H.condense ~protected:[ 1 ] h))

let qcheck = QCheck_alcotest.to_alcotest

let gen_hg =
  QCheck.Gen.(
    let* n = int_range 1 7 in
    let* m = int_range 0 6 in
    let* edges =
      list_repeat m (list_size (int_range 1 3) (int_bound (n - 1)))
    in
    return (List.init n Fun.id, edges))

let arb_hg =
  QCheck.make
    ~print:(fun (vs, es) ->
      Printf.sprintf "V=%d E=[%s]" (List.length vs)
        (String.concat ";" (List.map (fun e -> String.concat "," (List.map string_of_int e)) es)))
    gen_hg

let prop_condense_preserves_hitting_set =
  QCheck.Test.make ~name:"condensation preserves min hitting set (Claim 4.8)" ~count:300 arb_hg
    (fun (vs, es) ->
      let h = mk vs es in
      let c = H.condense h in
      H.min_hitting_set_bruteforce h = H.min_hitting_set_bruteforce c)

let prop_bnb_equals_brute =
  QCheck.Test.make ~name:"branch and bound = brute force" ~count:300 arb_hg (fun (vs, es) ->
      let h = mk vs es in
      fst (H.min_hitting_set h) = H.min_hitting_set_bruteforce h)

let test_greedy () =
  (* vertex 2 hits both edges: greedy must find the optimal singleton *)
  let cost, set = H.greedy_hitting_set (mk [ 1; 2; 3 ] [ [ 1; 2 ]; [ 2; 3 ] ]) in
  check_int "greedy picks the hub" 1 cost;
  check "set is {2}" true (set = [ 2 ]);
  let cost0, set0 = H.greedy_hitting_set (mk [ 1 ] []) in
  check_int "no edges: cost 0" 0 cost0;
  check "no edges: empty set" true (set0 = []);
  (* heavy hub vs two light leaves: weights must steer the choice *)
  let w v = if v = 2 then 10 else 1 in
  let costw, setw = H.greedy_hitting_set ~weights:w (mk [ 1; 2; 3 ] [ [ 1; 2 ]; [ 2; 3 ] ]) in
  check_int "weighted greedy avoids the heavy hub" 2 costw;
  check "picks the leaves" true (List.sort compare setw = [ 1; 3 ])

let prop_greedy_upper_bound =
  QCheck.Test.make ~name:"greedy hitting set is feasible and upper-bounds the optimum" ~count:300
    (QCheck.pair arb_hg (QCheck.make QCheck.Gen.(int_range 1 5)))
    (fun ((vs, es), wseed) ->
      let h = mk vs es in
      let w v = 1 + ((v * wseed) mod 4) in
      let cost, set = H.greedy_hitting_set ~weights:w h in
      List.for_all (fun e -> List.exists (fun v -> List.mem v set) e) (H.edges h)
      && cost = List.fold_left (fun a v -> a + w v) 0 set
      && cost >= H.min_hitting_set_bruteforce ~weights:w h)

let prop_weighted_bnb =
  QCheck.Test.make ~name:"weighted branch and bound = weighted brute force" ~count:200
    (QCheck.pair arb_hg (QCheck.make QCheck.Gen.(int_range 1 5)))
    (fun ((vs, es), wseed) ->
      let h = mk vs es in
      let w v = 1 + ((v * wseed) mod 4) in
      fst (H.min_hitting_set ~weights:w h) = H.min_hitting_set_bruteforce ~weights:w h)

let () =
  Alcotest.run "hypergraph"
    [
      ( "structure",
        [
          Alcotest.test_case "make" `Quick test_make;
          Alcotest.test_case "edge domination" `Quick test_edge_domination;
          Alcotest.test_case "node domination" `Quick test_node_domination;
          Alcotest.test_case "protected vertices" `Quick test_protected;
          Alcotest.test_case "odd path" `Quick test_odd_path;
          Alcotest.test_case "path endpoints" `Quick test_path_endpoints;
          Alcotest.test_case "condensation trace" `Quick test_trace;
        ] );
      ( "hitting set",
        [
          Alcotest.test_case "basic" `Quick test_hitting_set;
          Alcotest.test_case "no edges" `Quick test_hitting_set_empty;
          Alcotest.test_case "greedy" `Quick test_greedy;
        ] );
      ( "properties",
        List.map qcheck
          [
            prop_condense_preserves_hitting_set;
            prop_bnb_equals_brute;
            prop_weighted_bnb;
            prop_greedy_upper_bound;
          ] );
    ]
