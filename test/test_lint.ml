(* rpq_lint: the repository's own sources must be clean, and the scanner
   must actually catch each banned construct (negative fixtures). *)

let rules findings = List.map (fun f -> f.Lint.rule) findings

let scan src = Lint.scan_source ~file:"fixture.ml" src

let check_rule name src rule () =
  let fs = scan src in
  Alcotest.(check bool)
    (Printf.sprintf "%s is flagged as %s" name rule)
    true
    (List.mem rule (rules fs))

let check_clean name src () =
  let fs = scan src in
  Alcotest.(check (list string)) (Printf.sprintf "%s is clean" name) [] (rules fs)

(* Each fixture is library code that compiles in spirit; the lint is
   purely lexical so it need not actually type-check. *)
let negative_fixtures =
  [
    ("List.hd", "let f xs = List.hd xs\n", Lint.rule_partial);
    ("List.nth", "let f xs = List.nth xs 3\n", Lint.rule_partial);
    ("Option.get", "let f o = Option.get o\n", Lint.rule_partial);
    ("bare Hashtbl.find", "let f h k = Hashtbl.find h k\n", Lint.rule_partial);
    ("Stdlib-qualified", "let f xs = Stdlib.List.hd xs\n", Lint.rule_partial);
    ("Obj.magic", "let f x = (Obj.magic x : int)\n", Lint.rule_obj_magic);
    ("physical equality", "let f a b = a == b\n", Lint.rule_physical_eq);
    ("physical disequality", "let f a b = a != b\n", Lint.rule_physical_eq);
    ("Printf.printf", "let f x = Printf.printf \"%d\" x\n", Lint.rule_print);
    ("print_string", "let f s = print_string s\n", Lint.rule_print);
    ("failwith", "let f () = failwith \"boom\"\n", Lint.rule_failwith);
    ("assert false", "let f () = assert false\n", Lint.rule_assert_false);
    ("assert (false)", "let f () = assert (false)\n", Lint.rule_assert_false);
    ( "banned call after a comment",
      "(* see below *)\nlet f xs =\n  List.hd xs\n",
      Lint.rule_partial );
    ("Unix value", "let t = Unix.gettimeofday ()\n", Lint.rule_unix);
    ("Sys.time clock read", "let t = Sys.time ()\n", Lint.rule_clock);
    ("gettimeofday clock read", "let t = Unix.gettimeofday ()\n", Lint.rule_clock);
    ("Unix module alias", "module U = Unix\n", Lint.rule_unix);
    ("UnixLabels", "let t = UnixLabels.fork ()\n", Lint.rule_unix);
    ("Unix.fsync", "let f fd = Unix.fsync fd\n", Lint.rule_sync);
    ("UnixLabels.fsync", "let f fd = UnixLabels.fsync fd\n", Lint.rule_sync);
    ("Unix.lockf", "let f fd = Unix.lockf fd Unix.F_TLOCK 0\n", Lint.rule_sync);
    ("UnixLabels.lockf", "let f fd = UnixLabels.lockf fd ~mode:F_TLOCK ~len:0\n", Lint.rule_sync);
    ("Unix.socket", "let f () = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0\n", Lint.rule_socket);
    ("Unix.socketpair", "let f () = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0\n", Lint.rule_socket);
    ("Unix.bind", "let f fd a = Unix.bind fd a\n", Lint.rule_socket);
    ("Unix.listen", "let f fd = Unix.listen fd 64\n", Lint.rule_socket);
    ("Unix.accept", "let f fd = Unix.accept fd\n", Lint.rule_socket);
    ("UnixLabels.connect", "let f fd a = UnixLabels.connect fd ~addr:a\n", Lint.rule_socket);
    ("Printf.eprintf", "let f x = Printf.eprintf \"%d\" x\n", Lint.rule_stderr);
    ("Format.eprintf", "let f x = Format.eprintf \"%d\" x\n", Lint.rule_stderr);
    ("prerr_endline", "let f s = prerr_endline s\n", Lint.rule_stderr);
    ("prerr_newline", "let f () = prerr_newline ()\n", Lint.rule_stderr);
    ("Stdlib-qualified prerr", "let f s = Stdlib.prerr_string s\n", Lint.rule_stderr);
    ("bare stderr channel", "let f s = output_string stderr s\n", Lint.rule_stderr);
    ("try catch-all", "let f g = try g () with _ -> 0\n", Lint.rule_catch_all);
    ( "match exception catch-all",
      "let f g x = match g x with exception _ -> 0 | v -> v\n",
      Lint.rule_catch_all );
    ("Random.int", "let f () = Random.int 10\n", Lint.rule_random);
    ("Random module alias", "module R = Random\n", Lint.rule_random);
    ("Random.self_init", "let () = Random.self_init ()\n", Lint.rule_random);
    ("exit", "let f () = exit 1\n", Lint.rule_exit);
    ("Stdlib.exit", "let f () = Stdlib.exit 1\n", Lint.rule_exit);
    ("top-level ref", "let cache = ref []\n", Lint.rule_state);
    ( "top-level Hashtbl with annotation",
      "let tbl : (int, int) Hashtbl.t = Hashtbl.create 16\n",
      Lint.rule_state );
    ("top-level Buffer", "let buf = Buffer.create 64\n", Lint.rule_state);
    ( "top-level ref on the next line",
      "let registry =\n  ref []\n",
      Lint.rule_state );
  ]

let clean_fixtures =
  [
    ("find_opt", "let f h k = Hashtbl.find_opt h k\nlet g o = Option.get_ok o\n");
    ("pp_print_string", "let f ppf s = Format.pp_print_string ppf s\n");
    ("banned name in a string", "let s = \"never call List.hd or use == here\"\n");
    ("banned name in a comment", "(* List.hd and assert false and == *)\nlet x = 1\n");
    ( "banned name in a nested comment with a string",
      "(* outer (* \"assert\" *) still a comment: failwith *)\nlet x = 1\n" );
    ("structural equality", "let f a b = a = b || a <> b\n");
    ("longer operators", "let ( === ) a b = a = b\nlet x = 1 === 1\n");
    ("assert with a real condition", "let f x = assert (x >= 0); x = false\n");
    ("char literals", "let f c = c = 'a' || c = '\\n' || c = '\\'' \n");
    ("primed identifiers", "let f x' = x' + 1\n");
    ("module field access", "let f (r : Db.fact) = r.Db.label\n");
    ("Unix in a comment", "(* like Unix.fork *)\nlet x = 1\n");
    ("Unix as an identifier prefix", "let unix_like = 1\nlet f (m : Unix_free.t) = m\n");
    ("clock via Obs", "let t = Obs.Clock.now () -. Obs.Clock.cpu ()\n");
    ("Sys.time in a comment", "(* cf. Sys.time *)\nlet x = 1\n");
    ("fsync in a comment", "(* the journal calls Unix.fsync here *)\nlet x = 1\n");
    ("fsync-like identifier", "let fsync_policy = 1\nlet lockf_free = 2\n");
    ("socket in a comment", "(* Unix.connect would race here *)\nlet x = 1\n");
    ("socket-like identifiers", "let socket_path = 1\nlet reconnect = 2\nlet bind_depth = 3\n");
    ( "transport helpers are not socket tokens",
      "let f path = Transport.connect_unix path\nlet g () = Transport.pair ()\n" );
    ("stderr in a comment", "(* never write to stderr or Printf.eprintf here *)\nlet x = 1\n");
    ("stderr-like identifiers", "let stderr_copy = 1\nlet to_stderr = 2\nlet f r = r.stderr_field\n");
    ("logging via Obs", "let f () = Obs.Log.warn \"shed\" []\n");
    ("wildcard match case", "let f x = match x with Some y -> y | _ -> 0\n");
    ("wildcard first match case", "let f x = match x with _ -> 0\n");
    ("tuple wildcard match", "let f p = match p with _, _ -> 0\n");
    ("specific exception handler", "let f g = try g () with Not_found -> 0\n");
    ("local mutable state", "let f () =\n  let c = ref 0 in\n  incr c;\n  !c\n");
    ("seeded prng", "let f seed = Invariant.Prng.make seed\n");
    ("random-like identifiers", "let randomized = 1\nlet f r = r.random_field\n");
    ("exit-like identifier", "let exit_code = 1\n");
    ("function definition is not state", "let make_table n = Hashtbl.create n\n");
  ]

let test_line_numbers () =
  let src = "let a = 1\n\n(* comment\n   spanning lines *)\nlet f xs = List.hd xs\n" in
  match scan src with
  | [ f ] ->
      Alcotest.(check string) "rule" Lint.rule_partial f.Lint.rule;
      Alcotest.(check int) "line survives stripping" 5 f.Lint.line
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

(* The dune test cwd is _build/default/test; dune mirrors the sources into
   _build/default, so walking up finds the copied lib/ tree. *)
let rec find_lib_root dir =
  let candidate = Filename.concat dir "lib" in
  if Sys.file_exists (Filename.concat (Filename.concat candidate "invariant") "invariant.ml")
  then Some candidate
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_lib_root parent

let test_repo_clean () =
  match find_lib_root (Sys.getcwd ()) with
  | None -> Alcotest.fail "could not locate the lib/ source tree from the test cwd"
  | Some lib_root ->
      let findings =
        Lint.filter_allowlist ~allowlist:Lint.default_allowlist (Lint.scan_lib ~lib_root)
      in
      Alcotest.(check (list string))
        "lib/ has no lint findings" []
        (List.map Lint.finding_to_string findings)

let test_missing_mli () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "rpq_lint_test_fixture" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o700;
  let with_iface = Filename.concat dir "good.ml" in
  let without_iface = Filename.concat dir "bad.ml" in
  List.iter
    (fun (path, contents) ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc)
    [ (with_iface, "let x = 1\n"); (with_iface ^ "i", "val x : int\n");
      (without_iface, "let y = 2\n") ];
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ with_iface; with_iface ^ "i"; without_iface ];
      if Sys.file_exists dir then Sys.rmdir dir)
    (fun () ->
      let fs = Lint.missing_mlis ~lib_root:dir in
      Alcotest.(check (list string))
        "only the interface-less module is flagged" [ Lint.rule_missing_mli ] (rules fs);
      match fs with
      | [ f ] -> Alcotest.(check string) "flagged file" without_iface f.Lint.file
      | _ -> Alcotest.fail "expected exactly one finding")

(* The Unix confinement is structural: the same source is flagged under
   <root>/core/ and exempt under <root>/runner/ — with no allowlist. *)
let test_unix_exemption () =
  let root = Filename.concat (Filename.get_temp_dir_name ()) "rpq_lint_unix_fixture" in
  let runner = Filename.concat root "runner" in
  let core = Filename.concat root "core" in
  List.iter (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o700) [ root; runner; core ];
  let src = "let now () = Unix.gettimeofday ()\n" in
  let files =
    List.concat_map
      (fun dir ->
        let ml = Filename.concat dir "clock.ml" in
        let mli = Filename.concat dir "clock.mli" in
        Out_channel.with_open_text ml (fun oc -> output_string oc src);
        Out_channel.with_open_text mli (fun oc -> output_string oc "val now : unit -> float\n");
        [ ml; mli ])
      [ runner; core ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove files;
      List.iter Sys.rmdir [ runner; core; root ])
    (fun () ->
      let fs = List.filter (fun f -> f.Lint.rule = Lint.rule_unix) (Lint.scan_lib ~lib_root:root) in
      Alcotest.(check (list string))
        "only the core copy is flagged"
        [ Filename.concat core "clock.ml" ]
        (List.map (fun f -> f.Lint.file) fs);
      (* gettimeofday trips both the Unix rule and the clock rule. *)
      Alcotest.(check (list string))
        "scan_source itself still flags the runner copy"
        [ Lint.rule_clock; Lint.rule_unix ]
        (List.sort compare
           (rules (Lint.scan_source ~file:(Filename.concat runner "clock.ml") src))))

(* Same structural mechanism for clocks: [Sys.time] is flagged under
   <root>/core/ and exempt under <root>/obs/. The fixture deliberately
   avoids Unix so only the clock rule is in play. *)
let test_clock_exemption () =
  let root = Filename.concat (Filename.get_temp_dir_name ()) "rpq_lint_clock_fixture" in
  let obs = Filename.concat root "obs" in
  let core = Filename.concat root "core" in
  List.iter (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o700) [ root; obs; core ];
  let src = "let cpu () = Sys.time ()\n" in
  let files =
    List.concat_map
      (fun dir ->
        let ml = Filename.concat dir "cpu.ml" in
        let mli = Filename.concat dir "cpu.mli" in
        Out_channel.with_open_text ml (fun oc -> output_string oc src);
        Out_channel.with_open_text mli (fun oc -> output_string oc "val cpu : unit -> float\n");
        [ ml; mli ])
      [ obs; core ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove files;
      List.iter Sys.rmdir [ obs; core; root ])
    (fun () ->
      let fs =
        List.filter (fun f -> f.Lint.rule = Lint.rule_clock) (Lint.scan_lib ~lib_root:root)
      in
      Alcotest.(check (list string))
        "only the core copy is flagged"
        [ Filename.concat core "cpu.ml" ]
        (List.map (fun f -> f.Lint.file) fs);
      Alcotest.(check (list string))
        "scan_source itself still flags the obs copy"
        [ Lint.rule_clock ]
        (rules (Lint.scan_source ~file:(Filename.concat obs "cpu.ml") src)))

(* The fsync/lockf confinement is strictly tighter than the Unix rule:
   under <root>/obs/ the Unix rule is structurally exempt but the sync
   rule still fires; only <root>/runner/ escapes both. *)
let test_sync_exemption () =
  let root = Filename.concat (Filename.get_temp_dir_name ()) "rpq_lint_sync_fixture" in
  let runner = Filename.concat root "runner" in
  let obs = Filename.concat root "obs" in
  List.iter (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o700) [ root; runner; obs ];
  let src = "let f fd = Unix.fsync fd\n" in
  let files =
    List.concat_map
      (fun dir ->
        let ml = Filename.concat dir "sync.ml" in
        let mli = Filename.concat dir "sync.mli" in
        Out_channel.with_open_text ml (fun oc -> output_string oc src);
        Out_channel.with_open_text mli (fun oc ->
            output_string oc "val f : Unix.file_descr -> unit\n");
        [ ml; mli ])
      [ runner; obs ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove files;
      List.iter Sys.rmdir [ runner; obs; root ])
    (fun () ->
      let fs =
        List.filter (fun f -> f.Lint.rule = Lint.rule_sync) (Lint.scan_lib ~lib_root:root)
      in
      Alcotest.(check (list string))
        "obs is flagged, runner is exempt"
        [ Filename.concat obs "sync.ml" ]
        (List.map (fun f -> f.Lint.file) fs);
      (* scan_source itself reports both rules: fsync is also a Unix use. *)
      Alcotest.(check (list string))
        "scan_source flags the runner copy with both rules"
        [ Lint.rule_sync; Lint.rule_unix ]
        (List.sort compare
           (rules (Lint.scan_source ~file:(Filename.concat runner "sync.ml") src))))

(* Socket confinement is tighter still: module-scoped, not directory-
   scoped. Inside <root>/runner/ the Unix rule is exempt, but only the
   slug runner/transport may utter socket primitives — a sibling module
   in the very same directory is flagged. *)
let test_socket_exemption () =
  let root = Filename.concat (Filename.get_temp_dir_name ()) "rpq_lint_socket_fixture" in
  let runner = Filename.concat root "runner" in
  List.iter (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o700) [ root; runner ];
  let src = "let f fd = Unix.accept fd\n" in
  let files =
    List.concat_map
      (fun name ->
        let ml = Filename.concat runner (name ^ ".ml") in
        let mli = ml ^ "i" in
        Out_channel.with_open_text ml (fun oc -> output_string oc src);
        Out_channel.with_open_text mli (fun oc ->
            output_string oc "val f : Unix.file_descr -> Unix.file_descr * Unix.sockaddr\n");
        [ ml; mli ])
      [ "transport"; "endpoints" ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove files;
      List.iter Sys.rmdir [ runner; root ])
    (fun () ->
      let fs =
        List.filter (fun f -> f.Lint.rule = Lint.rule_socket) (Lint.scan_lib ~lib_root:root)
      in
      Alcotest.(check (list string))
        "the sibling module is flagged, transport is exempt"
        [ Filename.concat runner "endpoints.ml" ]
        (List.map (fun f -> f.Lint.file) fs);
      (* scan_source itself reports both rules: accept is also a Unix use. *)
      Alcotest.(check (list string))
        "scan_source flags the transport copy with both rules"
        [ Lint.rule_socket; Lint.rule_unix ]
        (List.sort compare
           (rules (Lint.scan_source ~file:(Filename.concat runner "transport.ml") src))))

(* Stderr confinement is module-scoped like sockets: inside <root>/obs/
   only the slug obs/log may write to stderr — a sibling module in the
   same directory is flagged. The fixture avoids Printf/Format prefixes
   nothing else fires on, so only the stderr rule is in play. *)
let test_stderr_exemption () =
  let root = Filename.concat (Filename.get_temp_dir_name ()) "rpq_lint_stderr_fixture" in
  let obs = Filename.concat root "obs" in
  List.iter (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o700) [ root; obs ];
  let src = "let emit line = output_string stderr (line ^ \"\\n\")\n" in
  let files =
    List.concat_map
      (fun name ->
        let ml = Filename.concat obs (name ^ ".ml") in
        let mli = ml ^ "i" in
        Out_channel.with_open_text ml (fun oc -> output_string oc src);
        Out_channel.with_open_text mli (fun oc -> output_string oc "val emit : string -> unit\n");
        [ ml; mli ])
      [ "log"; "trace" ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove files;
      List.iter Sys.rmdir [ obs; root ])
    (fun () ->
      let fs =
        List.filter (fun f -> f.Lint.rule = Lint.rule_stderr) (Lint.scan_lib ~lib_root:root)
      in
      Alcotest.(check (list string))
        "the sibling module is flagged, the logger is exempt"
        [ Filename.concat obs "trace.ml" ]
        (List.map (fun f -> f.Lint.file) fs);
      Alcotest.(check (list string))
        "scan_source itself still flags the logger copy"
        [ Lint.rule_stderr ]
        (rules (Lint.scan_source ~file:(Filename.concat obs "log.ml") src)))

(* {2 Whole-program fixtures}

   Each fixture is a miniature repo tree (lib/<unit>/dune + sources)
   written to a temp directory and fed to [Lint.analyze] with a policy
   whose layer table covers exactly the fixture's units. *)

let write_file path contents =
  Out_channel.with_open_text path (fun oc -> output_string oc contents)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_tree name files k =
  let root = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists root then rm_rf root;
  Sys.mkdir root 0o700;
  let rec ensure d =
    if not (Sys.file_exists d) then begin
      ensure (Filename.dirname d);
      Sys.mkdir d 0o700
    end
  in
  List.iter
    (fun (rel, contents) ->
      let path = Filename.concat root rel in
      ensure (Filename.dirname path);
      write_file path contents)
    files;
  Fun.protect ~finally:(fun () -> rm_rf root) (fun () -> k root)

let policy_with ?(grants = []) layers =
  { Lint_policy.default with Lint_policy.layers; grants }

let reach_tree =
  [
    ("lib/leaf/dune", "(library (name leaf))\n");
    ("lib/leaf/pool.ml", "let go () = Unix.fork ()\n");
    ("lib/leaf/pool.mli", "val go : unit -> int\n");
    ("lib/mid/dune", "(library (name mid) (libraries leaf))\n");
    ("lib/mid/helper.ml", "let f () = Leaf.Pool.go ()\n");
    ("lib/mid/helper.mli", "val f : unit -> int\n");
    ("lib/top/dune", "(library (name top) (libraries mid))\n");
    ("lib/top/exact.ml", "let run () = Mid.Helper.f ()\n");
    ("lib/top/exact.mli", "val run : unit -> int\n");
  ]

let reach_layers = [ ("leaf", 0); ("mid", 1); ("top", 2) ]

(* The headline behavior: a module that never names Unix is reported
   with a full witness path when it reaches one that does — one hop for
   the direct caller, two hops for the module above it. *)
let test_transitive_reach () =
  with_tree "rpq_lint_reach_fixture" reach_tree (fun root ->
      let a = Lint.analyze ~root ~policy:(policy_with reach_layers) in
      Alcotest.(check bool)
        "direct unix finding on the leaf" true
        (List.exists
           (fun f -> f.Lint.rule = Lint.rule_unix && f.Lint.file = "lib/leaf/pool.ml")
           a.Lint.findings);
      let reach = List.filter (fun f -> f.Lint.rule = Lint.rule_reach) a.Lint.findings in
      Alcotest.(check (list (pair string (list string))))
        "witness paths, outermost module first"
        [
          ("lib/mid/helper.ml", [ "Mid.Helper"; "Leaf.Pool" ]);
          ("lib/top/exact.ml", [ "Top.Exact"; "Mid.Helper"; "Leaf.Pool" ]);
        ]
        (List.map (fun f -> (f.Lint.file, f.Lint.path)) reach))

(* A grant is an encapsulation boundary: granting 'unix to the leaf
   silences the direct finding and stops the capability from
   propagating to either caller. *)
let test_grant_stops_propagation () =
  with_tree "rpq_lint_grant_fixture" reach_tree (fun root ->
      let policy =
        policy_with ~grants:[ ("leaf", [ Lint_rules.Cunix ]) ] reach_layers
      in
      let a = Lint.analyze ~root ~policy in
      Alcotest.(check (list string))
        "no findings once the leaf holds the grant" []
        (List.map Lint.finding_to_string a.Lint.findings))

let test_layer_violation () =
  with_tree "rpq_lint_layer_fixture"
    [
      ("lib/lo/dune", "(library (name lo) (libraries hi))\n");
      ("lib/lo/x.ml", "let v = 1\n");
      ("lib/lo/x.mli", "val v : int\n");
      ("lib/hi/dune", "(library (name hi))\n");
      ("lib/hi/y.ml", "let w = 2\n");
      ("lib/hi/y.mli", "val w : int\n");
    ]
    (fun root ->
      let a = Lint.analyze ~root ~policy:(policy_with [ ("lo", 0); ("hi", 1) ]) in
      match a.Lint.findings with
      | [ f ] ->
          Alcotest.(check string) "rule" Lint.rule_layer f.Lint.rule;
          Alcotest.(check string) "flagged at the dune stanza" "lib/lo/dune" f.Lint.file
      | fs ->
          Alcotest.failf "expected exactly the layering finding, got: %s"
            (String.concat "; " (List.map Lint.finding_to_string fs)))

(* The exec-deps contract: an executable with a policy allowlist is
   flagged for every library it links beyond the list — internal and
   external alike — and is clean once it sheds them. This is the
   mechanism keeping rpq_certcheck independent of the solver stack. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let exec_deps_tree checker_libs =
  [
    ("lib/cert0/dune", "(library (name cert0))\n");
    ("lib/cert0/ck.ml", "let ok = true\n");
    ("lib/cert0/ck.mli", "val ok : bool\n");
    ("lib/solver0/dune", "(library (name solver0))\n");
    ("lib/solver0/s.ml", "let solve = 42\n");
    ("lib/solver0/s.mli", "val solve : int\n");
    ( "bin/dune",
      Printf.sprintf "(executable (name checker) (libraries %s))\n" checker_libs );
    ("bin/checker.ml", "let () = ignore Cert0.Ck.ok\n");
  ]

let exec_deps_policy =
  {
    Lint_policy.default with
    Lint_policy.layers = [ ("cert0", 0); ("solver0", 0) ];
    peer_layers = [ 0 ];
    exec_layer = 1;
    exec_deps = [ ("checker", [ "cert0" ]) ];
  }

let test_exec_deps_violation () =
  with_tree "rpq_lint_execdeps_fixture"
    (exec_deps_tree "cert0 solver0 str")
    (fun root ->
      let a = Lint.analyze ~root ~policy:exec_deps_policy in
      let hits =
        List.filter (fun f -> f.Lint.rule = Lint.rule_exec_deps) a.Lint.findings
      in
      Alcotest.(check int)
        "one finding per library outside the allowlist" 2 (List.length hits);
      List.iter
        (fun f ->
          Alcotest.(check string) "flagged at the dune stanza" "bin/dune" f.Lint.file)
        hits;
      Alcotest.(check bool)
        "the internal solver link is named" true
        (List.exists
           (fun f ->
             contains f.Lint.message "solver0"
             && contains f.Lint.message "cert0")
           hits);
      Alcotest.(check bool)
        "the external str link is named" true
        (List.exists (fun f -> contains f.Lint.message "str") hits))

let test_exec_deps_clean () =
  with_tree "rpq_lint_execdeps_clean_fixture" (exec_deps_tree "cert0") (fun root ->
      let a = Lint.analyze ~root ~policy:exec_deps_policy in
      Alcotest.(check (list string))
        "allowlisted link only: clean" []
        (List.map Lint.finding_to_string
           (List.filter (fun f -> f.Lint.rule = Lint.rule_exec_deps) a.Lint.findings)))

let test_module_cycle () =
  with_tree "rpq_lint_cycle_fixture"
    [
      ("lib/c/dune", "(library (name c))\n");
      ("lib/c/a.ml", "let f () = B.g ()\n");
      ("lib/c/a.mli", "val f : unit -> unit\n");
      ("lib/c/b.ml", "let g () = A.f ()\n");
      ("lib/c/b.mli", "val g : unit -> unit\n");
    ]
    (fun root ->
      let a = Lint.analyze ~root ~policy:(policy_with [ ("c", 0) ]) in
      match List.filter (fun f -> f.Lint.rule = Lint.rule_cycle) a.Lint.findings with
      | [ f ] ->
          Alcotest.(check (list string)) "cycle members" [ "C.A"; "C.B" ] f.Lint.path
      | fs -> Alcotest.failf "expected one cycle finding, got %d" (List.length fs))

let test_json_deterministic () =
  with_tree "rpq_lint_json_fixture" reach_tree (fun root ->
      let policy = policy_with reach_layers in
      let a = Lint.analyze ~root ~policy in
      let b = Lint.analyze ~root ~policy in
      Alcotest.(check bool) "report is non-trivial" true
        (String.length (Lint.analysis_json a) > 100);
      Alcotest.(check string)
        "two scans render byte-identical JSON" (Lint.analysis_json a)
        (Lint.analysis_json b))

let test_unreadable_root_errors () =
  let raised =
    match Lint.analyze ~root:"/nonexistent-rpq-root" ~policy:Lint_policy.default with
    | _ -> false
    | exception Lint.Lint_error (file, _, _) ->
        Alcotest.(check bool)
          "error names the unreadable path" true
          (String.length file > 0);
        true
  in
  Alcotest.(check bool) "analyze raised Lint_error" true raised

let test_malformed_dune_errors () =
  with_tree "rpq_lint_bad_dune_fixture"
    [ ("lib/x/dune", "(library (name x)\n"); ("lib/x/m.ml", "let v = 1\n") ]
    (fun root ->
      let raised =
        match Lint.analyze ~root ~policy:Lint_policy.default with
        | _ -> None
        | exception Lint.Lint_error (file, line, _) -> Some (file, line)
      in
      match raised with
      | Some (file, line) ->
          Alcotest.(check bool) "error points at the dune file" true
            (String.ends_with ~suffix:"dune" file);
          Alcotest.(check int) "error carries the opening line" 1 line
      | None -> Alcotest.fail "a truncated dune file must be a hard error")

let test_undeclared_raise () =
  with_tree "rpq_lint_raise_fixture"
    [
      ("solver/bad.ml", "exception Boom\nlet f () = raise Boom\n");
      ("solver/bad.mli", "val f : unit -> 'a\n");
      ("solver/good.ml", "exception Stop\nlet f g = try g (); raise Stop with Stop -> ()\n");
      ("solver/good.mli", "val f : (unit -> unit) -> unit\n");
      ("solver/decl.ml", "exception Eek\nlet f () = raise Eek\n");
      ("solver/decl.mli", "exception Eek\n\nval f : unit -> 'a\n");
      ("solver/brk.ml", "let f () = raise Exit\n");
      ("solver/brk.mli", "val f : unit -> 'a\n");
      ("solver/other.ml", "exception Oops of int\n");
      ("solver/other.mli", "exception Oops of int\n");
      ("solver/q.ml", "let f () = raise (Other.Oops 3)\n");
      ("solver/q.mli", "val f : unit -> 'a\n");
      ("solver/qbad.ml", "let f () = raise (Other.Nope 3)\n");
      ("solver/qbad.mli", "val f : unit -> 'a\n");
    ]
    (fun root ->
      let fs =
        List.filter (fun f -> f.Lint.rule = Lint.rule_raise) (Lint.scan_lib ~lib_root:root)
      in
      let solver = Filename.concat root "solver" in
      Alcotest.(check (list string))
        "only undeclared raises are flagged"
        [ Filename.concat solver "bad.ml"; Filename.concat solver "qbad.ml" ]
        (List.map (fun f -> f.Lint.file) fs))

let test_repo_analyze () =
  match find_lib_root (Sys.getcwd ()) with
  | None -> Alcotest.fail "could not locate the lib/ source tree from the test cwd"
  | Some lib_root ->
      let root = Filename.dirname lib_root in
      let a = Lint.analyze ~root ~policy:Lint_policy.default in
      Alcotest.(check (list string))
        "whole-program analysis of the repo is clean" []
        (List.map Lint.finding_to_string a.Lint.findings);
      let b = Lint.analyze ~root ~policy:Lint_policy.default in
      Alcotest.(check string)
        "repo report is deterministic" (Lint.analysis_json a) (Lint.analysis_json b)

let test_allowlist () =
  let fs = scan "let f xs = List.hd xs\n" in
  Alcotest.(check int) "finding exists" 1 (List.length fs);
  Alcotest.(check int) "suffix+rule allows it" 0
    (List.length (Lint.filter_allowlist ~allowlist:[ ("fixture.ml", Lint.rule_partial) ] fs));
  Alcotest.(check int) "wildcard rule allows it" 0
    (List.length (Lint.filter_allowlist ~allowlist:[ ("fixture.ml", "*") ] fs));
  Alcotest.(check int) "other file's entry does not" 1
    (List.length (Lint.filter_allowlist ~allowlist:[ ("other.ml", "*") ] fs))

let () =
  Alcotest.run "lint"
    [
      ( "negative fixtures",
        List.map
          (fun (name, src, rule) -> Alcotest.test_case name `Quick (check_rule name src rule))
          negative_fixtures );
      ( "clean fixtures",
        List.map
          (fun (name, src) -> Alcotest.test_case name `Quick (check_clean name src))
          clean_fixtures );
      ( "engine",
        [
          Alcotest.test_case "line numbers" `Quick test_line_numbers;
          Alcotest.test_case "missing mli" `Quick test_missing_mli;
          Alcotest.test_case "unix exemption" `Quick test_unix_exemption;
          Alcotest.test_case "clock exemption" `Quick test_clock_exemption;
          Alcotest.test_case "sync exemption" `Quick test_sync_exemption;
          Alcotest.test_case "socket exemption" `Quick test_socket_exemption;
          Alcotest.test_case "stderr exemption" `Quick test_stderr_exemption;
          Alcotest.test_case "allowlist" `Quick test_allowlist;
        ] );
      ( "whole-program",
        [
          Alcotest.test_case "transitive reach witness" `Quick test_transitive_reach;
          Alcotest.test_case "grant stops propagation" `Quick test_grant_stops_propagation;
          Alcotest.test_case "layer violation" `Quick test_layer_violation;
          Alcotest.test_case "exec-deps violation" `Quick test_exec_deps_violation;
          Alcotest.test_case "exec-deps clean" `Quick test_exec_deps_clean;
          Alcotest.test_case "module cycle" `Quick test_module_cycle;
          Alcotest.test_case "deterministic json" `Quick test_json_deterministic;
          Alcotest.test_case "unreadable root errors" `Quick test_unreadable_root_errors;
          Alcotest.test_case "malformed dune errors" `Quick test_malformed_dune_errors;
          Alcotest.test_case "undeclared raise" `Quick test_undeclared_raise;
        ] );
      ( "repository",
        [
          Alcotest.test_case "lib/ is clean" `Quick test_repo_clean;
          Alcotest.test_case "whole-program analyze is clean" `Quick test_repo_analyze;
        ] );
    ]
