(* rpq_lint: the repository's own sources must be clean, and the scanner
   must actually catch each banned construct (negative fixtures). *)

let rules findings = List.map (fun f -> f.Lint.rule) findings

let scan src = Lint.scan_source ~file:"fixture.ml" src

let check_rule name src rule () =
  let fs = scan src in
  Alcotest.(check bool)
    (Printf.sprintf "%s is flagged as %s" name rule)
    true
    (List.mem rule (rules fs))

let check_clean name src () =
  let fs = scan src in
  Alcotest.(check (list string)) (Printf.sprintf "%s is clean" name) [] (rules fs)

(* Each fixture is library code that compiles in spirit; the lint is
   purely lexical so it need not actually type-check. *)
let negative_fixtures =
  [
    ("List.hd", "let f xs = List.hd xs\n", Lint.rule_partial);
    ("List.nth", "let f xs = List.nth xs 3\n", Lint.rule_partial);
    ("Option.get", "let f o = Option.get o\n", Lint.rule_partial);
    ("bare Hashtbl.find", "let f h k = Hashtbl.find h k\n", Lint.rule_partial);
    ("Stdlib-qualified", "let f xs = Stdlib.List.hd xs\n", Lint.rule_partial);
    ("Obj.magic", "let f x = (Obj.magic x : int)\n", Lint.rule_obj_magic);
    ("physical equality", "let f a b = a == b\n", Lint.rule_physical_eq);
    ("physical disequality", "let f a b = a != b\n", Lint.rule_physical_eq);
    ("Printf.printf", "let f x = Printf.printf \"%d\" x\n", Lint.rule_print);
    ("print_string", "let f s = print_string s\n", Lint.rule_print);
    ("failwith", "let f () = failwith \"boom\"\n", Lint.rule_failwith);
    ("assert false", "let f () = assert false\n", Lint.rule_assert_false);
    ("assert (false)", "let f () = assert (false)\n", Lint.rule_assert_false);
    ( "banned call after a comment",
      "(* see below *)\nlet f xs =\n  List.hd xs\n",
      Lint.rule_partial );
    ("Unix value", "let t = Unix.gettimeofday ()\n", Lint.rule_unix);
    ("Sys.time clock read", "let t = Sys.time ()\n", Lint.rule_clock);
    ("gettimeofday clock read", "let t = Unix.gettimeofday ()\n", Lint.rule_clock);
    ("Unix module alias", "module U = Unix\n", Lint.rule_unix);
    ("UnixLabels", "let t = UnixLabels.fork ()\n", Lint.rule_unix);
    ("Unix.fsync", "let f fd = Unix.fsync fd\n", Lint.rule_sync);
    ("UnixLabels.fsync", "let f fd = UnixLabels.fsync fd\n", Lint.rule_sync);
    ("Unix.lockf", "let f fd = Unix.lockf fd Unix.F_TLOCK 0\n", Lint.rule_sync);
    ("UnixLabels.lockf", "let f fd = UnixLabels.lockf fd ~mode:F_TLOCK ~len:0\n", Lint.rule_sync);
  ]

let clean_fixtures =
  [
    ("find_opt", "let f h k = Hashtbl.find_opt h k\nlet g o = Option.get_ok o\n");
    ("pp_print_string", "let f ppf s = Format.pp_print_string ppf s\n");
    ("banned name in a string", "let s = \"never call List.hd or use == here\"\n");
    ("banned name in a comment", "(* List.hd and assert false and == *)\nlet x = 1\n");
    ( "banned name in a nested comment with a string",
      "(* outer (* \"assert\" *) still a comment: failwith *)\nlet x = 1\n" );
    ("structural equality", "let f a b = a = b || a <> b\n");
    ("longer operators", "let ( === ) a b = a = b\nlet x = 1 === 1\n");
    ("assert with a real condition", "let f x = assert (x >= 0); x = false\n");
    ("char literals", "let f c = c = 'a' || c = '\\n' || c = '\\'' \n");
    ("primed identifiers", "let f x' = x' + 1\n");
    ("module field access", "let f (r : Db.fact) = r.Db.label\n");
    ("Unix in a comment", "(* like Unix.fork *)\nlet x = 1\n");
    ("Unix as an identifier prefix", "let unix_like = 1\nlet f (m : Unix_free.t) = m\n");
    ("clock via Obs", "let t = Obs.Clock.now () -. Obs.Clock.cpu ()\n");
    ("Sys.time in a comment", "(* cf. Sys.time *)\nlet x = 1\n");
    ("fsync in a comment", "(* the journal calls Unix.fsync here *)\nlet x = 1\n");
    ("fsync-like identifier", "let fsync_policy = 1\nlet lockf_free = 2\n");
  ]

let test_line_numbers () =
  let src = "let a = 1\n\n(* comment\n   spanning lines *)\nlet f xs = List.hd xs\n" in
  match scan src with
  | [ f ] ->
      Alcotest.(check string) "rule" Lint.rule_partial f.Lint.rule;
      Alcotest.(check int) "line survives stripping" 5 f.Lint.line
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

(* The dune test cwd is _build/default/test; dune mirrors the sources into
   _build/default, so walking up finds the copied lib/ tree. *)
let rec find_lib_root dir =
  let candidate = Filename.concat dir "lib" in
  if Sys.file_exists (Filename.concat (Filename.concat candidate "invariant") "invariant.ml")
  then Some candidate
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_lib_root parent

let test_repo_clean () =
  match find_lib_root (Sys.getcwd ()) with
  | None -> Alcotest.fail "could not locate the lib/ source tree from the test cwd"
  | Some lib_root ->
      let findings =
        Lint.filter_allowlist ~allowlist:Lint.default_allowlist (Lint.scan_lib ~lib_root)
      in
      Alcotest.(check (list string))
        "lib/ has no lint findings" []
        (List.map Lint.finding_to_string findings)

let test_missing_mli () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "rpq_lint_test_fixture" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o700;
  let with_iface = Filename.concat dir "good.ml" in
  let without_iface = Filename.concat dir "bad.ml" in
  List.iter
    (fun (path, contents) ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc)
    [ (with_iface, "let x = 1\n"); (with_iface ^ "i", "val x : int\n");
      (without_iface, "let y = 2\n") ];
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ with_iface; with_iface ^ "i"; without_iface ];
      if Sys.file_exists dir then Sys.rmdir dir)
    (fun () ->
      let fs = Lint.missing_mlis ~lib_root:dir in
      Alcotest.(check (list string))
        "only the interface-less module is flagged" [ Lint.rule_missing_mli ] (rules fs);
      match fs with
      | [ f ] -> Alcotest.(check string) "flagged file" without_iface f.Lint.file
      | _ -> Alcotest.fail "expected exactly one finding")

(* The Unix confinement is structural: the same source is flagged under
   <root>/core/ and exempt under <root>/runner/ — with no allowlist. *)
let test_unix_exemption () =
  let root = Filename.concat (Filename.get_temp_dir_name ()) "rpq_lint_unix_fixture" in
  let runner = Filename.concat root "runner" in
  let core = Filename.concat root "core" in
  List.iter (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o700) [ root; runner; core ];
  let src = "let now () = Unix.gettimeofday ()\n" in
  let files =
    List.concat_map
      (fun dir ->
        let ml = Filename.concat dir "clock.ml" in
        let mli = Filename.concat dir "clock.mli" in
        Out_channel.with_open_text ml (fun oc -> output_string oc src);
        Out_channel.with_open_text mli (fun oc -> output_string oc "val now : unit -> float\n");
        [ ml; mli ])
      [ runner; core ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove files;
      List.iter Sys.rmdir [ runner; core; root ])
    (fun () ->
      let fs = List.filter (fun f -> f.Lint.rule = Lint.rule_unix) (Lint.scan_lib ~lib_root:root) in
      Alcotest.(check (list string))
        "only the core copy is flagged"
        [ Filename.concat core "clock.ml" ]
        (List.map (fun f -> f.Lint.file) fs);
      (* gettimeofday trips both the Unix rule and the clock rule. *)
      Alcotest.(check (list string))
        "scan_source itself still flags the runner copy"
        [ Lint.rule_clock; Lint.rule_unix ]
        (List.sort compare
           (rules (Lint.scan_source ~file:(Filename.concat runner "clock.ml") src))))

(* Same structural mechanism for clocks: [Sys.time] is flagged under
   <root>/core/ and exempt under <root>/obs/. The fixture deliberately
   avoids Unix so only the clock rule is in play. *)
let test_clock_exemption () =
  let root = Filename.concat (Filename.get_temp_dir_name ()) "rpq_lint_clock_fixture" in
  let obs = Filename.concat root "obs" in
  let core = Filename.concat root "core" in
  List.iter (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o700) [ root; obs; core ];
  let src = "let cpu () = Sys.time ()\n" in
  let files =
    List.concat_map
      (fun dir ->
        let ml = Filename.concat dir "cpu.ml" in
        let mli = Filename.concat dir "cpu.mli" in
        Out_channel.with_open_text ml (fun oc -> output_string oc src);
        Out_channel.with_open_text mli (fun oc -> output_string oc "val cpu : unit -> float\n");
        [ ml; mli ])
      [ obs; core ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove files;
      List.iter Sys.rmdir [ obs; core; root ])
    (fun () ->
      let fs =
        List.filter (fun f -> f.Lint.rule = Lint.rule_clock) (Lint.scan_lib ~lib_root:root)
      in
      Alcotest.(check (list string))
        "only the core copy is flagged"
        [ Filename.concat core "cpu.ml" ]
        (List.map (fun f -> f.Lint.file) fs);
      Alcotest.(check (list string))
        "scan_source itself still flags the obs copy"
        [ Lint.rule_clock ]
        (rules (Lint.scan_source ~file:(Filename.concat obs "cpu.ml") src)))

(* The fsync/lockf confinement is strictly tighter than the Unix rule:
   under <root>/obs/ the Unix rule is structurally exempt but the sync
   rule still fires; only <root>/runner/ escapes both. *)
let test_sync_exemption () =
  let root = Filename.concat (Filename.get_temp_dir_name ()) "rpq_lint_sync_fixture" in
  let runner = Filename.concat root "runner" in
  let obs = Filename.concat root "obs" in
  List.iter (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o700) [ root; runner; obs ];
  let src = "let f fd = Unix.fsync fd\n" in
  let files =
    List.concat_map
      (fun dir ->
        let ml = Filename.concat dir "sync.ml" in
        let mli = Filename.concat dir "sync.mli" in
        Out_channel.with_open_text ml (fun oc -> output_string oc src);
        Out_channel.with_open_text mli (fun oc ->
            output_string oc "val f : Unix.file_descr -> unit\n");
        [ ml; mli ])
      [ runner; obs ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Sys.remove files;
      List.iter Sys.rmdir [ runner; obs; root ])
    (fun () ->
      let fs =
        List.filter (fun f -> f.Lint.rule = Lint.rule_sync) (Lint.scan_lib ~lib_root:root)
      in
      Alcotest.(check (list string))
        "obs is flagged, runner is exempt"
        [ Filename.concat obs "sync.ml" ]
        (List.map (fun f -> f.Lint.file) fs);
      (* scan_source itself reports both rules: fsync is also a Unix use. *)
      Alcotest.(check (list string))
        "scan_source flags the runner copy with both rules"
        [ Lint.rule_sync; Lint.rule_unix ]
        (List.sort compare
           (rules (Lint.scan_source ~file:(Filename.concat runner "sync.ml") src))))

let test_allowlist () =
  let fs = scan "let f xs = List.hd xs\n" in
  Alcotest.(check int) "finding exists" 1 (List.length fs);
  Alcotest.(check int) "suffix+rule allows it" 0
    (List.length (Lint.filter_allowlist ~allowlist:[ ("fixture.ml", Lint.rule_partial) ] fs));
  Alcotest.(check int) "wildcard rule allows it" 0
    (List.length (Lint.filter_allowlist ~allowlist:[ ("fixture.ml", "*") ] fs));
  Alcotest.(check int) "other file's entry does not" 1
    (List.length (Lint.filter_allowlist ~allowlist:[ ("other.ml", "*") ] fs))

let () =
  Alcotest.run "lint"
    [
      ( "negative fixtures",
        List.map
          (fun (name, src, rule) -> Alcotest.test_case name `Quick (check_rule name src rule))
          negative_fixtures );
      ( "clean fixtures",
        List.map
          (fun (name, src) -> Alcotest.test_case name `Quick (check_clean name src))
          clean_fixtures );
      ( "engine",
        [
          Alcotest.test_case "line numbers" `Quick test_line_numbers;
          Alcotest.test_case "missing mli" `Quick test_missing_mli;
          Alcotest.test_case "unix exemption" `Quick test_unix_exemption;
          Alcotest.test_case "clock exemption" `Quick test_clock_exemption;
          Alcotest.test_case "sync exemption" `Quick test_sync_exemption;
          Alcotest.test_case "allowlist" `Quick test_allowlist;
        ] );
      ("repository", [ Alcotest.test_case "lib/ is clean" `Quick test_repo_clean ]);
    ]
